package attest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"pufatt/internal/rng"
	"pufatt/internal/telemetry"
)

// This file is the deterministic fault-injection harness. Robustness code
// that is only exercised by real packet loss is untested code; every fault
// class the retry/quarantine machinery claims to survive is injectable here
// from a seed, so the tests replay identical fault schedules run after run.
//
// Two injectors cover the two transports:
//
//   - FaultyConn wraps a byte stream (net.Conn, net.Pipe) and injects at
//     write granularity. The codec emits each frame as a single Write, so a
//     write-level fault is exactly a frame-level fault.
//   - FaultyLink wraps an in-memory ProverAgent and injects on the
//     response path by round-tripping it through the real wire codec, so
//     corruption and truncation are detected by the same CRC/length checks
//     that guard the TCP path.

// FaultClass enumerates the injectable fault classes.
type FaultClass int

const (
	// FaultDrop swallows a frame entirely.
	FaultDrop FaultClass = iota
	// FaultCorrupt flips one bit somewhere in the frame.
	FaultCorrupt
	// FaultTruncate delivers only a prefix of the frame.
	FaultTruncate
	// FaultDelay delivers the frame late (past any deadline in force).
	FaultDelay
	// FaultDuplicate delivers the frame twice.
	FaultDuplicate
	// FaultJitter delivers the frame intact but late by JitterSeconds —
	// sub-deadline latency inflation, the overclocking/proxy-attack
	// signature: the session COMPLETES and the verifier sees the inflated
	// RTT, feeding the timing SLO instead of the transport-fault path.
	// (FaultDelay, by contrast, models a missed deadline: a transport
	// fault, no verdict.) New classes append here so existing seeds keep
	// their schedules — draw() consumes RNG only for configured classes.
	FaultJitter

	numFaultClasses
)

// String names the fault class.
func (c FaultClass) String() string {
	switch c {
	case FaultDrop:
		return "drop"
	case FaultCorrupt:
		return "corrupt"
	case FaultTruncate:
		return "truncate"
	case FaultDelay:
		return "delay"
	case FaultDuplicate:
		return "duplicate"
	case FaultJitter:
		return "jitter"
	}
	return fmt.Sprintf("fault(%d)", int(c))
}

// FaultPlan sets the per-frame probability of each fault class (0..1; they
// are evaluated in declaration order and at most one fault fires per
// frame). The zero plan injects nothing.
type FaultPlan struct {
	Drop      float64
	Corrupt   float64
	Truncate  float64
	Delay     float64
	Duplicate float64
	Jitter    float64

	// DelaySeconds is the extra latency a FaultDelay imposes. FaultyConn
	// sleeps it in real time (the TCP deadlines are real); FaultyLink
	// models it on the simulated clock.
	DelaySeconds float64
	// JitterSeconds is the extra latency a FaultJitter adds to a delivered
	// response — enough to shift the RTT distribution, not enough (by
	// design of the plan) to miss the deadline. FaultyConn sleeps it;
	// FaultyLink adds it to the modelled compute time.
	JitterSeconds float64

	// MaxFaults, when positive, stops injecting after that many faults —
	// the transient-outage model, under which a retry budget eventually
	// wins. Zero means fault forever (the dead-link model).
	MaxFaults int
}

// prob returns the probability configured for class c.
func (p FaultPlan) prob(c FaultClass) float64 {
	switch c {
	case FaultDrop:
		return p.Drop
	case FaultCorrupt:
		return p.Corrupt
	case FaultTruncate:
		return p.Truncate
	case FaultDelay:
		return p.Delay
	case FaultDuplicate:
		return p.Duplicate
	case FaultJitter:
		return p.Jitter
	}
	return 0
}

// PlanFor returns a plan that always fires the single fault class c, for
// per-class tests. delaySeconds feeds DelaySeconds for FaultDelay and
// JitterSeconds for FaultJitter.
func PlanFor(c FaultClass, delaySeconds float64, maxFaults int) FaultPlan {
	p := FaultPlan{DelaySeconds: delaySeconds, MaxFaults: maxFaults}
	switch c {
	case FaultDrop:
		p.Drop = 1
	case FaultCorrupt:
		p.Corrupt = 1
	case FaultTruncate:
		p.Truncate = 1
	case FaultDelay:
		p.Delay = 1
	case FaultDuplicate:
		p.Duplicate = 1
	case FaultJitter:
		p.Jitter = 1
		p.JitterSeconds = delaySeconds
		p.DelaySeconds = 0
	}
	return p
}

// FaultEvent is the structured record emitted for every injected fault:
// one line of JSON naming the fault class, the schedule seed, and the
// 0-based frame index at which it fired. A fault-injection run is therefore
// replayable from its logs alone — the (seed, frame) pairs pin the entire
// schedule.
type FaultEvent struct {
	Event string `json:"event"` // always "fault_injected"
	Class string `json:"class"`
	Seed  uint64 `json:"seed"`
	Frame int    `json:"frame"`
	Total int    `json:"total"` // faults injected so far under this schedule
}

// faultState is the shared draw/accounting core of both injectors.
type faultState struct {
	mu       sync.Mutex
	plan     FaultPlan
	src      *rng.Source
	seed     uint64
	frames   int // frames drawn for so far (the event's frame index)
	injected int
	counts   [numFaultClasses]int
	log      io.Writer
	tel      *Telemetry // metric/journal sink; nil means the package default
}

// SetTelemetry directs the injector's fault metrics and journal events to
// an explicit telemetry bundle instead of the package default (nil
// restores the default). Promoted to FaultyConn and FaultyLink; tests with
// a private Telemetry use it so injected faults land in the same flight
// recorder as the sessions they break.
func (s *faultState) SetTelemetry(t *Telemetry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tel = t
}

// telemetry returns the injector's sink.
func (s *faultState) telemetry() *Telemetry {
	if s.tel != nil {
		return s.tel
	}
	return tel
}

func newFaultState(plan FaultPlan, seed uint64) *faultState {
	return &faultState{plan: plan, src: rng.New(seed).Sub("faults"), seed: seed}
}

// SetLog directs one-line JSON FaultEvent records to w on every injected
// fault (nil disables, the default). The method is promoted to FaultyConn
// and FaultyLink; injectors sharing one schedule share the sink.
func (s *faultState) SetLog(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = w
}

// draw decides the fault (if any) for the next frame. The RNG consumes one
// draw per configured class per frame whether or not it fires, so the
// schedule for frame n is independent of which faults fired before it.
func (s *faultState) draw() (FaultClass, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	frame := s.frames
	s.frames++
	if s.plan.MaxFaults > 0 && s.injected >= s.plan.MaxFaults {
		return 0, false
	}
	hit := false
	var class FaultClass
	for c := FaultDrop; c < numFaultClasses; c++ {
		p := s.plan.prob(c)
		if p <= 0 {
			continue
		}
		if u := s.src.Float64(); !hit && u < p {
			hit, class = true, c
		}
	}
	if hit {
		s.injected++
		s.counts[class]++
		T := s.telemetry()
		T.FaultsInjected.With(class.String()).Inc()
		T.journal(telemetry.EventFaultInjected, 0, 0, "",
			fmt.Sprintf("class=%s seed=%d frame=%d", class.String(), s.seed, frame))
		if s.log != nil {
			line, err := json.Marshal(FaultEvent{
				Event: "fault_injected", Class: class.String(),
				Seed: s.seed, Frame: frame, Total: s.injected,
			})
			if err == nil {
				line = append(line, '\n')
				s.log.Write(line) //nolint:errcheck // best-effort logging
			}
		}
	}
	return class, hit
}

// Counts reports how many faults of each class have been injected.
func (s *faultState) Counts() map[FaultClass]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[FaultClass]int, numFaultClasses)
	for c := FaultDrop; c < numFaultClasses; c++ {
		if s.counts[c] > 0 {
			out[c] = s.counts[c]
		}
	}
	return out
}

// Injected reports the total number of injected faults.
func (s *faultState) Injected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// FaultInjector owns a deterministic fault schedule that can span several
// connections: a retrying verifier redials after every fault, and the
// transient-outage model (MaxFaults) must keep counting across those
// redials for "the budget eventually wins" to be testable.
type FaultInjector struct{ state *faultState }

// NewFaultInjector creates a schedule from the plan under the given seed.
func NewFaultInjector(plan FaultPlan, seed uint64) *FaultInjector {
	return &FaultInjector{state: newFaultState(plan, seed)}
}

// Wrap attaches a stream to the schedule. All conns wrapped by one
// injector share its draw sequence and fault budget.
func (fi *FaultInjector) Wrap(rw io.ReadWriter) *FaultyConn {
	return &FaultyConn{rw: rw, faultState: fi.state}
}

// WrapAgent attaches an in-memory agent to the schedule.
func (fi *FaultInjector) WrapAgent(agent ProverAgent) *FaultyLink {
	return &FaultyLink{agent: agent, faultState: fi.state}
}

// Counts reports how many faults of each class have been injected so far.
func (fi *FaultInjector) Counts() map[FaultClass]int { return fi.state.Counts() }

// SetLog directs one-line JSON FaultEvent records to w on every injected
// fault across all conns and agents sharing this schedule (nil disables).
func (fi *FaultInjector) SetLog(w io.Writer) { fi.state.SetLog(w) }

// Injected reports the total number of injected faults so far.
func (fi *FaultInjector) Injected() int { return fi.state.Injected() }

// FaultyConn wraps a byte stream and injects frame-granular faults on
// writes, under a seeded deterministic schedule. Reads pass through
// untouched (wrap both ends to model a bidirectionally lossy link). It is
// safe for the usual one-reader/one-writer connection discipline, and
// implements net.Conn when wrapping one (deadline and address calls are
// forwarded; on a bare io.ReadWriter they are no-ops).
type FaultyConn struct {
	rw io.ReadWriter
	*faultState

	jmu         sync.Mutex
	injectedRTT float64
}

// NewFaultyConn wraps rw with a fresh single-connection fault schedule.
// Use a FaultInjector to share one schedule across redials.
func NewFaultyConn(rw io.ReadWriter, plan FaultPlan, seed uint64) *FaultyConn {
	return NewFaultInjector(plan, seed).Wrap(rw)
}

// Read passes through to the wrapped stream.
func (f *FaultyConn) Read(p []byte) (int, error) { return f.rw.Read(p) }

// Write delivers, mangles, or swallows one frame according to the schedule.
// Faults lie about success (returning len(p), as a lossy link does): the
// sender learns of the fault only through the peer's silence or complaint.
func (f *FaultyConn) Write(p []byte) (int, error) {
	class, hit := f.draw()
	if !hit {
		return f.rw.Write(p)
	}
	switch class {
	case FaultDrop:
		return len(p), nil
	case FaultCorrupt:
		// Flip one bit of the frame copy; never the original buffer.
		c := make([]byte, len(p))
		copy(c, p)
		if len(c) > 0 {
			bit := f.pick(len(c) * 8)
			c[bit/8] ^= 1 << (bit % 8)
		}
		if _, err := f.rw.Write(c); err != nil {
			return 0, err
		}
		return len(p), nil
	case FaultTruncate:
		n := len(p) / 2
		if _, err := f.rw.Write(p[:n]); err != nil {
			return 0, err
		}
		// A truncated frame leaves the peer mid-ReadFull; close the
		// stream (when possible) so the fault surfaces as an immediate
		// ErrUnexpectedEOF instead of a deadline expiry.
		if c, ok := f.rw.(io.Closer); ok {
			_ = c.Close()
		}
		return len(p), nil
	case FaultDelay:
		time.Sleep(time.Duration(f.delaySeconds() * float64(time.Second)))
		if _, err := f.rw.Write(p); err != nil {
			return 0, err
		}
		return len(p), nil
	case FaultDuplicate:
		if _, err := f.rw.Write(p); err != nil {
			return 0, err
		}
		if _, err := f.rw.Write(p); err != nil {
			return 0, err
		}
		return len(p), nil
	case FaultJitter:
		// Intact but late — and (unlike FaultDelay) meant to stay inside
		// the deadline, so the frame verifies with an inflated RTT. The
		// sleep models the wire, but the timing decision runs on the
		// *simulated* clock (see the timing note in tcp.go), so the added
		// latency is also recorded for InjectedRTTSeconds.
		jit := f.jitterSeconds()
		time.Sleep(time.Duration(jit * float64(time.Second)))
		f.recordInjectedRTT(jit)
		if _, err := f.rw.Write(p); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return f.rw.Write(p)
}

// recordInjectedRTT accumulates simulated-clock latency added by jitter
// faults on this connection.
func (f *FaultyConn) recordInjectedRTT(s float64) {
	f.jmu.Lock()
	f.injectedRTT += s
	f.jmu.Unlock()
}

// InjectedRTTSeconds reports the simulated-clock latency that jitter
// faults have added on this connection. The verifier's timing decision is
// modelled, not wall-clock (see the timing note in tcp.go), so the TCP
// request path asks the conn for this value and folds it into the
// session's elapsed time — that is what makes a jittered-but-complete
// session rejectable on the time bound over a real transport, exactly as
// FaultyLink's `compute + JitterSeconds` does in process.
func (f *FaultyConn) InjectedRTTSeconds() float64 {
	f.jmu.Lock()
	defer f.jmu.Unlock()
	return f.injectedRTT
}

// Close closes the wrapped stream if it is closeable.
func (f *FaultyConn) Close() error {
	if c, ok := f.rw.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// net.Conn forwarding, so a wrapped net.Conn still honours deadlines (the
// retry machinery depends on them to bound a dropped frame's cost).

// LocalAddr forwards to the wrapped net.Conn (nil otherwise).
func (f *FaultyConn) LocalAddr() net.Addr {
	if nc, ok := f.rw.(net.Conn); ok {
		return nc.LocalAddr()
	}
	return nil
}

// RemoteAddr forwards to the wrapped net.Conn (nil otherwise).
func (f *FaultyConn) RemoteAddr() net.Addr {
	if nc, ok := f.rw.(net.Conn); ok {
		return nc.RemoteAddr()
	}
	return nil
}

// SetDeadline forwards to the wrapped net.Conn (no-op otherwise).
func (f *FaultyConn) SetDeadline(t time.Time) error {
	if nc, ok := f.rw.(net.Conn); ok {
		return nc.SetDeadline(t)
	}
	return nil
}

// SetReadDeadline forwards to the wrapped net.Conn (no-op otherwise).
func (f *FaultyConn) SetReadDeadline(t time.Time) error {
	if nc, ok := f.rw.(net.Conn); ok {
		return nc.SetReadDeadline(t)
	}
	return nil
}

// SetWriteDeadline forwards to the wrapped net.Conn (no-op otherwise).
func (f *FaultyConn) SetWriteDeadline(t time.Time) error {
	if nc, ok := f.rw.(net.Conn); ok {
		return nc.SetWriteDeadline(t)
	}
	return nil
}

// pick draws a deterministic index in [0, n).
func (f *FaultyConn) pick(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.src.Intn(n)
}

func (f *FaultyConn) delaySeconds() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.plan.DelaySeconds
}

func (f *FaultyConn) jitterSeconds() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.plan.JitterSeconds
}

// FaultyLink wraps an in-memory ProverAgent with a faulty last hop, for the
// simulated-clock paths (RunSession, Fleet.Sweep). Response frames pass
// through the real wire codec with faults applied to the bytes, so every
// fault is detected — and classified as transport — by exactly the checks
// that guard the TCP path:
//
//	drop      → ErrLinkDrop
//	corrupt   → ErrChecksum (CRC32 catches the flipped bit)
//	truncate  → io.ErrUnexpectedEOF
//	delay     → ErrLinkTimeout (the frame exists but missed its deadline)
//	duplicate → ErrStaleFrame (the replayed copy desyncs the stream)
//	jitter    → no error: the response arrives intact with JitterSeconds
//	            added to its modelled compute time, so the verifier sees
//	            an inflated RTT (and rejects on the time bound only when
//	            the inflation actually exceeds δ)
type FaultyLink struct {
	agent ProverAgent
	*faultState
}

// NewFaultyLink wraps agent with the fault plan under the given seed.
func NewFaultyLink(agent ProverAgent, plan FaultPlan, seed uint64) *FaultyLink {
	return &FaultyLink{agent: agent, faultState: newFaultState(plan, seed)}
}

// Respond answers the challenge through the faulty hop.
func (l *FaultyLink) Respond(ch Challenge) (Response, float64, error) {
	class, hit := l.draw()
	if !hit {
		return l.agent.Respond(ch)
	}
	switch class {
	case FaultDrop:
		return Response{}, 0, Transport(ErrLinkDrop)
	case FaultDelay:
		return Response{}, 0, Transport(fmt.Errorf("%w: +%.3gs", ErrLinkTimeout, l.plan.DelaySeconds))
	case FaultDuplicate:
		return Response{}, 0, Transport(ErrStaleFrame)
	case FaultJitter:
		resp, compute, err := l.agent.Respond(ch)
		if err != nil {
			return resp, compute, err
		}
		return resp, compute + l.plan.JitterSeconds, nil
	}
	resp, compute, err := l.agent.Respond(ch)
	if err != nil {
		return resp, compute, err
	}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		return Response{}, 0, err
	}
	frame := buf.Bytes()
	switch class {
	case FaultCorrupt:
		bit := l.pickIndex(len(frame) * 8)
		frame[bit/8] ^= 1 << (bit % 8)
	case FaultTruncate:
		frame = frame[:len(frame)/2]
	}
	got, err := ReadResponse(bytes.NewReader(frame))
	if err != nil {
		return Response{}, 0, Transport(err)
	}
	return got, compute, nil
}

// pickIndex draws a deterministic index in [0, n).
func (l *FaultyLink) pickIndex(n int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.src.Intn(n)
}
