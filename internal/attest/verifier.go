package attest

import (
	"fmt"

	"pufatt/internal/core"
	"pufatt/internal/ecc"
	"pufatt/internal/swatt"
	"pufatt/internal/telemetry"
)

// Result records one attestation decision.
type Result struct {
	Accepted bool
	Reason   string
	// Elapsed is the verifier-observed round-trip time (seconds) and Delta
	// the enforced bound.
	Elapsed float64
	Delta   float64
}

// Verifier holds everything V needs: the expected memory image, the
// checksum parameters, the device's reference source (emulator or CRP
// database), and the timing policy.
type Verifier struct {
	// Device names the subject device for observability: health-registry
	// aggregates, journal events, and span attributes are keyed by it.
	// Empty means anonymous (sessions run, but no per-device health is
	// kept). Fleet.Enroll fills it with "node-<id>" when unset.
	Device string

	Expected *swatt.Image
	Pipeline *core.VerifierPipeline
	// BaseFreqHz is the prover clock frequency V expects (F_base in
	// Section 4.2).
	BaseFreqHz float64
	// ExpectedCycles is the attestation program's (data-independent) cycle
	// count.
	ExpectedCycles uint64
	// ComputeSlack is the tolerated relative compute overshoot (e.g. 0.05
	// = 5 %); the paper's assumption is that the honest algorithm is
	// near-optimal, so the slack can be small.
	ComputeSlack float64
	// NetworkAllowance is the absolute time budget (seconds) added for
	// message transfer and propagation.
	NetworkAllowance float64
	// Seeds, when non-nil, is the verifier's authentication budget: every
	// session claims one enrolled single-use seed and binds it into the
	// challenge (see budget.go). Nil means emulation-model verification
	// with no budget.
	Seeds SeedBudget
	// PUFEpoch is the device reconfiguration epoch this verifier's
	// reference source was enrolled at, for budgets that cannot report it
	// themselves (and for budgetless emulation verification of a
	// reconfigured device). Epoch-aware budgets override it per session.
	PUFEpoch uint32
	// Gate, when non-nil, serialises this verifier's sessions against
	// epoch cutovers (see reenroll.go): a session holds the gate in read
	// mode from seed claim to verdict, and a cutover takes it in write
	// mode, so no session ever spans a reconfiguration.
	Gate *EpochGate
	// Nonces, when non-nil, supplies the challenge nonce r0 in place of
	// crypto/rand. Production verifiers leave it nil; test and audit
	// harnesses install a seeded stream so session outcomes are exactly
	// reproducible.
	Nonces func() uint32

	sessions uint64
}

// NewVerifier builds a verifier for the expected image over the given
// reference source. votes must match the prover port's majority-voting
// factor (it affects the cycle count).
func NewVerifier(expected *swatt.Image, src core.ReferenceSource, baseFreqHz float64, votes int) (*Verifier, error) {
	vp, err := core.NewVerifierPipelineFrom(src)
	if err != nil {
		return nil, err
	}
	cycles, err := swatt.ExpectedCycles(expected, votes)
	if err != nil {
		return nil, err
	}
	return &Verifier{
		Expected:         expected,
		Pipeline:         vp,
		BaseFreqHz:       baseFreqHz,
		ExpectedCycles:   cycles,
		ComputeSlack:     0.05,
		NetworkAllowance: 0.05,
	}, nil
}

// ExpectedResponseBits returns the wire size of an honest response for the
// verifier's checksum parameters.
func (v *Verifier) ExpectedResponseBits() int {
	return (8+32)*8 + 8*v.Expected.Layout.Params.Chunks*HelperBitsPerWord + 32
}

// AllowNetwork sets the network allowance from a link model: one challenge
// transfer plus one response transfer (the helper stream dominates), with a
// 25 % margin for jitter. Deployments that know their link tighter should
// set NetworkAllowance directly.
func (v *Verifier) AllowNetwork(link Link) {
	cost := link.TransferSeconds(ChallengeBits) + link.TransferSeconds(v.ExpectedResponseBits())
	v.NetworkAllowance = 1.25 * cost
}

// Delta returns the enforced time bound δ.
func (v *Verifier) Delta() float64 {
	return float64(v.ExpectedCycles)/v.BaseFreqHz*(1+v.ComputeSlack) + v.NetworkAllowance
}

// NewSession draws a fresh challenge. When a seed budget is bound, the
// session first claims one single-use seed and carries it as the
// challenge's x0 — so issuing a session IS consuming budget, and an
// exhausted budget fails here with a terminal (non-transport) error.
func (v *Verifier) NewSession() (Challenge, error) {
	v.sessions++
	ch, err := NewChallenge(v.sessions)
	if err != nil {
		return Challenge{}, err
	}
	if v.Nonces != nil {
		// Both random words of the challenge come from the stream; a
		// bound seed budget overrides x0 with the claimed seed below.
		ch.Nonce = v.Nonces()
		ch.PUFSeed = v.Nonces()
	}
	if err := v.claimSeed(&ch); err != nil {
		return Challenge{}, err
	}
	return ch, nil
}

// Verify checks a prover response against the challenge and the observed
// elapsed time. Every completed verification feeds the attest_rtt_seconds
// histogram and the per-verdict session counters — the timing distribution
// IS the security argument (Section 4), so it is always measured.
func (v *Verifier) Verify(ch Challenge, resp Response, elapsed float64) Result {
	return v.verifyObserved(tel, 0, ch, resp, elapsed)
}

// verifyObserved is Verify against an explicit telemetry bundle, recording
// the verdict (and the session's trace ID as the RTT exemplar) into that
// bundle's instruments — so a test's private bundle sees its own sessions,
// and history exemplars point at the right tracer.
func (v *Verifier) verifyObserved(t *Telemetry, trace telemetry.TraceID, ch Challenge, resp Response, elapsed float64) Result {
	res := v.verify(ch, resp, elapsed)
	t.observeSession(res, trace)
	return res
}

func (v *Verifier) verify(ch Challenge, resp Response, elapsed float64) Result {
	res := Result{Elapsed: elapsed, Delta: v.Delta()}
	if resp.Session != ch.Session {
		res.Reason = "session mismatch"
		return res
	}
	if resp.Epoch != ch.Epoch {
		// Prover and verifier disagree on the device's reconfiguration
		// epoch (a cutover one side has not seen). The response cannot
		// verify against this enrollment, so fail closed as a rejection —
		// the transport is fine, retrying would only burn budget.
		res.Reason = fmt.Sprintf("epoch mismatch: prover at epoch %d, verifier enrolled at %d", resp.Epoch, ch.Epoch)
		return res
	}
	if elapsed > res.Delta {
		res.Reason = fmt.Sprintf("time bound exceeded: %.4gs > δ=%.4gs", elapsed, res.Delta)
		return res
	}
	p := v.Expected.Layout.Params
	if len(resp.Helpers) != 8*p.Chunks {
		res.Reason = fmt.Sprintf("helper stream has %d words, want %d", len(resp.Helpers), 8*p.Chunks)
		return res
	}
	idx := 0
	want, err := swatt.Checksum(v.Expected.Layout.AttestedRegion(v.Expected.Mem), ch.EffectiveNonce(), p,
		func(seed uint32) (uint32, error) {
			h := resp.Helpers[idx*8 : idx*8+8]
			idx++
			z, err := v.Pipeline.Recover(uint64(seed), h)
			if err != nil {
				return 0, err
			}
			return uint32(ecc.BitsToWord(z)), nil
		})
	if err != nil {
		res.Reason = "reference checksum: " + err.Error()
		return res
	}
	if want != resp.Tag {
		res.Reason = "attestation response mismatch"
		return res
	}
	res.Accepted = true
	res.Reason = "ok"
	return res
}
