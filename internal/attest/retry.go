package attest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"pufatt/internal/rng"
	"pufatt/internal/telemetry"
)

// This file implements the verifier-side fault-tolerance policy: the
// classification of failures into *transport faults* (the channel mangled,
// lost, or delayed a frame — worth retrying) versus *verdicts* (the
// verifier decided; final), and an exponential-backoff retry loop over that
// classification.
//
// The distinction is security-critical, not cosmetic. A rejected
// attestation MUST stay rejected: if the verifier re-challenged on every
// rejection, an adversary with forgery probability ε per session would get
// ε·n odds over n automatic retries for free. Transport faults carry no
// such amplification — each retry is a fresh session with a fresh
// challenge, and a lost frame says nothing about the prover's memory state
// — so only they are eligible.

// Transport-fault sentinels produced by this package's own channel
// machinery (the frame codec has its own set: ErrBadMagic, ErrBadVersion,
// ErrFrameType, ErrChecksum, ErrFrameTooLarge, ErrBadTime).
var (
	// ErrLinkDrop reports a frame that the channel swallowed entirely.
	ErrLinkDrop = errors.New("attest: frame dropped by link")
	// ErrLinkTimeout reports a frame that arrived too late to count (or
	// never arrived within the deadline).
	ErrLinkTimeout = errors.New("attest: link timeout")
	// ErrStaleFrame reports a well-formed frame from a previous session —
	// the signature of a duplicated or replayed frame still sitting in the
	// stream. It is a desync of the channel, not a prover verdict.
	ErrStaleFrame = errors.New("attest: stale frame from earlier session")
	// ErrQuarantined reports a node the fleet has stopped attesting after
	// repeated transport failures.
	ErrQuarantined = errors.New("attest: node quarantined")
	// ErrCancelled reports an attestation abandoned because the caller's
	// context ended. It is terminal, not a transport fault: retrying
	// against a dead context can never succeed, so it must not consume the
	// retry budget.
	ErrCancelled = errors.New("attest: cancelled by caller")
)

// TransportError explicitly marks err as a retry-eligible channel fault.
// The fault injectors and custom transports use it to tag errors that
// IsTransport cannot recognise structurally.
type TransportError struct{ Err error }

func (e *TransportError) Error() string { return "attest: transport: " + e.Err.Error() }
func (e *TransportError) Unwrap() error { return e.Err }

// Transport wraps err as a transport-class fault (nil stays nil).
func Transport(err error) error {
	if err == nil {
		return nil
	}
	return &TransportError{Err: err}
}

// IsTransport reports whether err is a transport-class fault: a failure of
// the channel rather than of the prover. Only transport faults may be
// retried. Note that a *rejection* is not an error at all — Verify returns
// it inside Result — so a cryptographic verdict can never be classified
// here by construction.
func IsTransport(err error) bool {
	if err == nil {
		return false
	}
	var te *TransportError
	if errors.As(err, &te) {
		return true
	}
	// Frame-level faults: the channel delivered bytes that do not form a
	// valid frame of the expected kind.
	for _, sentinel := range []error{
		ErrBadMagic, ErrBadVersion, ErrFrameType, ErrChecksum,
		ErrFrameTooLarge, ErrBadTime, ErrTraceExt, ErrLinkDrop,
		ErrLinkTimeout, ErrStaleFrame,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	// Stream-level faults: truncation, resets, closed sockets, deadlines.
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var nerr net.Error
	return errors.As(err, &nerr)
}

// RetryPolicy configures the transport-fault retry loop: attempt budget and
// exponential backoff with deterministic, seeded jitter (reproducibility is
// a design requirement of the whole simulation stack, so even retry timing
// derives from an explicit seed).
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget (first try included). Values
	// below 1 behave as 1: a policy's zero value performs a single attempt.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; attempt n waits
	// BaseDelay·Multiplier^(n-1), capped at MaxDelay. A zero BaseDelay
	// disables sleeping entirely — the mode the simulated-clock paths use.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (0 = uncapped).
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor (values below 1 behave as 2).
	Multiplier float64
	// JitterSeed seeds the deterministic jitter stream. Jitter adds up to
	// 50% of the computed delay, decorrelating a fleet of verifiers that
	// all saw the same outage.
	JitterSeed uint64
	// AttemptTimeout bounds each individual attempt (0 = no per-attempt
	// bound). RequestWithRetry derives a per-attempt context from it, so a
	// dropped frame costs one timeout, not the whole budget's worth of
	// waiting.
	AttemptTimeout time.Duration
	// Sleep is the clock used between attempts; nil means time.Sleep.
	// Tests and simulated deployments inject a no-op or recorder.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy returns the policy used by the TCP verifier paths:
// 4 attempts, 50 ms base, ×2 growth, 1 s cap, jittered.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    time.Second,
		Multiplier:  2,
		JitterSeed:  1,
	}
}

// attempts returns the effective attempt budget.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the deterministic wait before retry attempt n (n ≥ 1 is
// the retry index: Backoff(1) precedes the second attempt). The same
// policy always yields the same schedule.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	if p.BaseDelay <= 0 || attempt < 1 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	// Seeded jitter: up to +50%, derived from (seed, attempt) so the
	// schedule is a pure function of the policy.
	u := rng.New(p.JitterSeed).SubN("backoff", attempt).Float64()
	return time.Duration(d * (1 + 0.5*u))
}

// sleep waits out the backoff for retry attempt n using the policy clock,
// journalling the computed delay against the given telemetry bundle.
func (p RetryPolicy) sleep(t *Telemetry, device string, attempt int) {
	d := p.Backoff(attempt)
	if d <= 0 {
		return
	}
	// The delay is observed when computed, not measured around the sleep,
	// so the backoff histogram is exact even under an injected no-op clock.
	t.Backoff.Observe(d.Seconds())
	t.journal(telemetry.EventBackoff, 0, 0, device, d.String())
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Do runs op until it returns nil, returns a non-transport error, or the
// attempt budget is exhausted; it reports the error of the last attempt and
// the number of attempts made. op receives the 0-based attempt index.
func (p RetryPolicy) Do(op func(attempt int) error) (attempts int, err error) {
	return p.do(tel, "", op)
}

// do is Do against an explicit telemetry bundle: attempts and backoffs are
// journalled (with the device name when known) as well as counted.
func (p RetryPolicy) do(t *Telemetry, device string, op func(attempt int) error) (attempts int, err error) {
	budget := p.attempts()
	for i := 0; i < budget; i++ {
		if i > 0 {
			p.sleep(t, device, i)
			t.journal(telemetry.EventRetry, 0, 0, device,
				fmt.Sprintf("attempt=%d cause=%q", i+1, err))
		}
		t.RetryAttempts.Inc()
		err = op(i)
		attempts = i + 1
		if err == nil || !IsTransport(err) {
			return attempts, err
		}
	}
	t.RetryExhausted.Inc()
	return attempts, fmt.Errorf("attest: %d attempts exhausted: %w", attempts, err)
}

// RunSessionRetry performs attestation sessions over the simulated link
// until one completes or the transport budget is exhausted. A completed
// session's verdict — accepted or rejected — is final and never retried;
// only transport faults (from a FaultyLink or a custom agent transport)
// consume the budget.
func RunSessionRetry(v *Verifier, agent ProverAgent, link Link, policy RetryPolicy) (Result, int, error) {
	return RunSessionRetryContext(context.Background(), v, agent, link, policy)
}

// RunSessionRetryContext is RunSessionRetry bound to a context: the loop
// checks ctx before every attempt, so a cancelled sweep stops burning its
// retry budget mid-node. A context error is not a transport fault — it is
// returned immediately without consuming further attempts.
func RunSessionRetryContext(ctx context.Context, v *Verifier, agent ProverAgent, link Link, policy RetryPolicy) (Result, int, error) {
	return tel.runSessionRetry(ctx, v, agent, link, policy)
}

// RunSessionRetry is the retry loop against this explicit telemetry
// bundle — the entry point for callers (the cluster tier, tests) that
// record into their own registry rather than the package default. It
// honours a trace parent installed with WithTraceParent.
func (t *Telemetry) RunSessionRetry(ctx context.Context, v *Verifier, agent ProverAgent, link Link, policy RetryPolicy) (Result, int, error) {
	return t.runSessionRetry(ctx, v, agent, link, policy)
}

// runSessionRetry is the retry loop against an explicit telemetry bundle.
// It is also the failure boundary: a terminal transport error feeds the
// device health registry (an availability datum) and — like a rejected
// verdict — triggers a flight-recorder dump carrying the failing session's
// trace ID.
func (t *Telemetry) runSessionRetry(ctx context.Context, v *Verifier, agent ProverAgent, link Link, policy RetryPolicy) (Result, int, error) {
	var (
		res   Result
		trace telemetry.TraceID
	)
	parent, _ := TraceParent(ctx)
	attempts, err := policy.do(t, v.Device, func(attempt int) error {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("%w: %v", ErrCancelled, cerr)
		}
		var opErr error
		res, trace, opErr = t.runSessionIn(parent, v, agent, link, attempt)
		return opErr
	})
	switch {
	case err != nil && IsTransport(err):
		t.Health.Observe(v.Device, telemetry.SessionObservation{
			Outcome: telemetry.OutcomeTransport, Retries: attempts - 1,
		})
		if _, derr := t.flightDump("transport", trace); derr != nil {
			t.journal(telemetry.EventVerifyOutcome, trace, 0, v.Device, "flight dump failed: "+derr.Error())
		}
	case err == nil && !res.Accepted:
		if _, derr := t.flightDump("rejected", trace); derr != nil {
			t.journal(telemetry.EventVerifyOutcome, trace, 0, v.Device, "flight dump failed: "+derr.Error())
		}
	}
	return res, attempts, err
}
