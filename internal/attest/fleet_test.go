package attest

import (
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
)

func buildFleet(t *testing.T, nodes int) (*Fleet, []*Prover, *swatt.Image) {
	t.Helper()
	design := core.MustNewDesign(core.DefaultConfig())
	params := swatt.Params{MemWords: 1024, Chunks: 4, BlocksPerChunk: 2, PRG: swatt.PRGMix32}
	image, err := swatt.BuildImage(params, []uint32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet()
	var provers []*Prover
	link := DefaultLink()
	for id := 0; id < nodes; id++ {
		dev := core.MustNewDevice(design, rng.New(500), id)
		port := mcu.MustNewDevicePort(dev)
		prover := NewProver(image.Clone(), port, 1)
		prover.TuneClock(0.98)
		v, err := NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
		if err != nil {
			t.Fatal(err)
		}
		v.AllowNetwork(link)
		if err := fleet.Enroll(id, v, prover); err != nil {
			t.Fatal(err)
		}
		provers = append(provers, prover)
	}
	return fleet, provers, image
}

func TestFleetSweepAllHealthy(t *testing.T) {
	fleet, _, _ := buildFleet(t, 3)
	if fleet.Size() != 3 {
		t.Fatalf("size = %d", fleet.Size())
	}
	results := fleet.Sweep(DefaultLink()).Results
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		if !r.Healthy() {
			t.Errorf("node %d unhealthy: %v %s", r.NodeID, r.Err, r.Result.Reason)
		}
	}
	if bad := Compromised(results); bad != nil {
		t.Errorf("compromised = %v, want none", bad)
	}
}

func TestFleetSweepPinpointsCompromise(t *testing.T) {
	fleet, provers, image := buildFleet(t, 3)
	// Flip a 400-word region: the 64-round traversal samples it except
	// with probability (1-400/1024)^64 ≈ 4e-15, so the test is stable
	// under the protocol's random nonces.
	for i := 0; i < 400; i++ {
		provers[1].Image.Mem[image.Layout.PayloadAddr+i] ^= 0xAA
	}
	results := fleet.Sweep(DefaultLink()).Results
	bad := Compromised(results)
	if len(bad) != 1 || bad[0] != 1 {
		t.Errorf("compromised = %v, want [1]", bad)
	}
	// Results come back in node-id order.
	for i, r := range results {
		if r.NodeID != i {
			t.Errorf("result %d has node id %d", i, r.NodeID)
		}
	}
}

func TestFleetEnrollRejectsDuplicates(t *testing.T) {
	fleet, _, _ := buildFleet(t, 1)
	if err := fleet.Enroll(0, nil, nil); err == nil {
		t.Error("duplicate enrollment accepted")
	}
}
