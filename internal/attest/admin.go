package attest

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"pufatt/internal/telemetry"
)

// This file exposes the attestation stack's operational surface over HTTP:
// Prometheus metrics, expvar-style JSON, recent attestation traces, and the
// runtime profiler. The endpoint is strictly opt-in — nothing listens until
// StartAdmin is called — and is meant for a loopback or management network,
// not the attestation data path.

// adminContentJSON is the Content-Type of every JSON admin route.
const adminContentJSON = "application/json; charset=utf-8"

// adminGet wraps an admin handler: GET and HEAD pass with the given
// Content-Type set up front; every other method is 405 with an Allow
// header. The admin surface is read-only by construction — a mutating verb
// reaching it is a client bug worth a loud, typed answer.
func adminGet(contentType string, fn func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", contentType)
		fn(w, r)
	}
}

// AdminMux returns an http.ServeMux serving the telemetry admin surface:
//
//	/metrics          Prometheus text exposition (format 0.0.4)
//	/metrics/history  windowed time-series history as JSON; range queries
//	                  via ?metric=&start=&end=&step=
//	/alerts           SLO burn-rate alert statuses as JSON
//	/debug/vars       expvar-style JSON of every registered metric
//	/debug/traces     recent attestation span trees as JSON
//	/debug/journal    the flight recorder's retained protocol events as JSON
//	/debug/profiles   the profile ring's sidecar index as JSON, newest
//	                  first; ?n= limits the entry count
//	/devices          per-device health snapshots (SLO judgements) as JSON
//	/healthz          fleet-wide health summary; HTTP 503 when any device is
//	                  suspect, 200 otherwise
//	/debug/pprof/     the standard runtime profiler endpoints
//
// All telemetry routes are GET/HEAD only (405 otherwise). A nil Telemetry
// means the package default (the one the attestation hot paths record
// into).
func AdminMux(t *Telemetry) *http.ServeMux {
	if t == nil {
		t = tel
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", adminGet("text/plain; version=0.0.4; charset=utf-8", func(w http.ResponseWriter, _ *http.Request) {
		_ = t.Registry.WritePrometheus(w)
	}))
	mux.HandleFunc("/metrics/history", adminGet(adminContentJSON, func(w http.ResponseWriter, r *http.Request) {
		q, err := telemetry.ParseRangeQuery(r.URL.Query())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		_ = t.History.WriteJSON(w, q)
	}))
	mux.HandleFunc("/alerts", adminGet(adminContentJSON, func(w http.ResponseWriter, _ *http.Request) {
		_ = t.Alerts.WriteJSON(w)
	}))
	mux.HandleFunc("/debug/vars", adminGet(adminContentJSON, func(w http.ResponseWriter, _ *http.Request) {
		_ = t.Registry.WriteJSON(w)
	}))
	mux.HandleFunc("/debug/traces", adminGet(adminContentJSON, func(w http.ResponseWriter, _ *http.Request) {
		_ = t.Tracer.WriteJSON(w)
	}))
	mux.HandleFunc("/debug/journal", adminGet(adminContentJSON, func(w http.ResponseWriter, _ *http.Request) {
		_ = t.Journal.WriteJSON(w)
	}))
	mux.HandleFunc("/debug/profiles", adminGet(adminContentJSON, func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if raw := r.URL.Query().Get("n"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 {
				http.Error(w, fmt.Sprintf("attest: bad n %q", raw), http.StatusBadRequest)
				return
			}
			limit = n
		}
		_ = t.Profiler.WriteJSON(w, limit)
	}))
	mux.HandleFunc("/devices", adminGet(adminContentJSON, func(w http.ResponseWriter, _ *http.Request) {
		_ = t.Health.WriteJSON(w)
	}))
	mux.HandleFunc("/healthz", adminGet(adminContentJSON, func(w http.ResponseWriter, _ *http.Request) {
		sum := t.Health.Summary()
		// A suspect device is a security signal: fail the health check so
		// orchestration-level alerting fires without parsing the body.
		// Degraded is availability trouble and awaiting-reenroll a planned
		// lifecycle state — both reported, both still 200.
		if sum.Status() == telemetry.StatusSuspect {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, `{"status": %q, "devices": %d, "ok": %d, "degraded": %d, "awaiting_reenroll": %d, "suspect": %d}`+"\n",
			sum.Status().String(), sum.Devices, sum.OK, sum.Degraded, sum.AwaitingReenroll, sum.Suspect)
	}))
	// pprof registers on http.DefaultServeMux via init; re-register its
	// handlers explicitly so the admin endpoint works on a private mux
	// without dragging DefaultServeMux (and whatever else registered
	// there) onto a network listener.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartAdmin serves the admin mux on the TCP address (":0" picks a free
// port) and returns the bound address plus a close function that stops the
// listener and aborts in-flight requests. A nil Telemetry serves the
// package default.
func StartAdmin(addr string, t *Telemetry) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: AdminMux(t)}
	go func() {
		if serr := srv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			_ = serr // listener closed under us: nothing useful to do
		}
	}()
	return ln.Addr(), srv.Close, nil
}

// StartAdmin attaches an admin endpoint to the prover server's lifecycle:
// it serves the package-default telemetry on addr and is shut down by
// Server.Close along with the attestation listener.
func (s *Server) StartAdmin(addr string) (net.Addr, error) {
	a, closeFn, err := StartAdmin(addr, nil)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = closeFn()
		return nil, net.ErrClosed
	}
	s.adminClose = closeFn
	s.mu.Unlock()
	return a, nil
}
