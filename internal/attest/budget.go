package attest

import (
	"errors"
	"fmt"

	"pufatt/internal/crp"
)

// SeedBudget is the verifier-side authentication budget of CRP-database
// verification (paper Section 3.3): a supply of single-use enrolled seeds.
// Claiming is the replay-protection boundary, so implementations must make
// an acknowledged claim stick — crp.Database for in-process budgets,
// store.Store and store.Registry handles for budgets that survive
// restarts.
type SeedBudget interface {
	// NextUnused claims and returns the next unused enrolled seed. Once
	// the budget is exhausted it returns crp.ErrExhausted, which the
	// session machinery treats as terminal (never a transport fault, never
	// retried).
	NextUnused() (uint64, error)
	// Remaining reports how many authentications the budget still covers.
	Remaining() int
}

// EpochBudget is the optional epoch-aware extension of SeedBudget:
// budgets backed by epoch-stamped enrollments (crp.Database, the durable
// store and its registry handles) claim the seed and report its epoch in
// one atomic step, so a concurrent epoch cutover can never hand the
// verifier a seed from one epoch labelled with another.
type EpochBudget interface {
	SeedBudget
	NextUnusedWithEpoch() (uint64, uint32, error)
	Epoch() uint32
}

// ExhaustedError is the typed lifecycle error for an empty (or retired)
// seed budget: the device is not compromised and not unreachable — it has
// simply consumed its enrolled authentication lifetime and awaits
// re-enrollment under a fresh epoch. Fleet sweeps bucket it separately
// ("exhausted-awaiting-reenroll") and the health registry degrades the
// device instead of marking it suspect. It wraps crp.ErrExhausted, so
// pre-PR6 errors.Is checks keep working.
type ExhaustedError struct {
	Device string // verifier's device name ("" when anonymous)
	Epoch  uint32 // the exhausted enrollment's epoch
	Err    error  // crp.ErrExhausted or store.ErrEpochRetired
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("attest: device %q seed budget exhausted at epoch %d (awaiting re-enrollment): %v",
		e.Device, e.Epoch, e.Err)
}

func (e *ExhaustedError) Unwrap() error { return e.Err }

// IsExhausted reports whether err is a seed-budget exhaustion — the
// awaiting-reenroll lifecycle state — in either its typed (ExhaustedError)
// or sentinel (crp.ErrExhausted) form.
func IsExhausted(err error) bool {
	var ex *ExhaustedError
	return errors.As(err, &ex) || errors.Is(err, crp.ErrExhausted)
}

// WithSeedBudget binds a seed budget to the verifier: every NewSession
// claims one seed and carries it as the challenge's x0 perturbation, so
// the claim is protocol-bound — a session cannot be issued without
// consuming budget, and a restart of a durable budget cannot resurrect a
// seed some earlier session already used.
func (v *Verifier) WithSeedBudget(b SeedBudget) *Verifier {
	v.Seeds = b
	return v
}

// claimSeed draws the session's x0 from the budget when one is configured.
// The enrolled seed space is 64-bit; the challenge carries its low 32 bits
// (the x0 width), which both sides mix identically. Epoch-aware budgets
// stamp the challenge with the claimed seed's epoch in the same step;
// budgets without epochs (and budgetless emulation verifiers) fall back to
// the verifier's static PUFEpoch.
func (v *Verifier) claimSeed(ch *Challenge) error {
	ch.Epoch = v.PUFEpoch
	if v.Seeds == nil {
		return nil
	}
	var (
		seed  uint64
		epoch = v.PUFEpoch
		err   error
	)
	if eb, ok := v.Seeds.(EpochBudget); ok {
		seed, epoch, err = eb.NextUnusedWithEpoch()
	} else {
		seed, err = v.Seeds.NextUnused()
	}
	if err != nil {
		if errors.Is(err, crp.ErrExhausted) {
			return &ExhaustedError{Device: v.Device, Epoch: epoch, Err: err}
		}
		return fmt.Errorf("attest: claiming session seed: %w", err)
	}
	ch.PUFSeed = uint32(seed)
	ch.Epoch = epoch
	return nil
}

// BudgetRemaining reports the verifier's remaining authentication budget,
// or -1 when no budget is bound (emulation-model verification is
// unlimited).
func (v *Verifier) BudgetRemaining() int {
	if v.Seeds == nil {
		return -1
	}
	return v.Seeds.Remaining()
}

// EnrollWithBudget registers a node whose verifier draws every session
// seed from the budget. A fleet of nodes may share one budget (a common
// enrollment pool) or hold one each; either way exhaustion surfaces as a
// terminal session error, distinct from both transport faults and
// integrity rejections.
func (f *Fleet) EnrollWithBudget(nodeID int, v *Verifier, agent ProverAgent, b SeedBudget) error {
	v.Seeds = b
	return f.Enroll(nodeID, v, agent)
}
