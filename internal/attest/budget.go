package attest

import "fmt"

// SeedBudget is the verifier-side authentication budget of CRP-database
// verification (paper Section 3.3): a supply of single-use enrolled seeds.
// Claiming is the replay-protection boundary, so implementations must make
// an acknowledged claim stick — crp.Database for in-process budgets,
// store.Store and store.Registry handles for budgets that survive
// restarts.
type SeedBudget interface {
	// NextUnused claims and returns the next unused enrolled seed. Once
	// the budget is exhausted it returns crp.ErrExhausted, which the
	// session machinery treats as terminal (never a transport fault, never
	// retried).
	NextUnused() (uint64, error)
	// Remaining reports how many authentications the budget still covers.
	Remaining() int
}

// WithSeedBudget binds a seed budget to the verifier: every NewSession
// claims one seed and carries it as the challenge's x0 perturbation, so
// the claim is protocol-bound — a session cannot be issued without
// consuming budget, and a restart of a durable budget cannot resurrect a
// seed some earlier session already used.
func (v *Verifier) WithSeedBudget(b SeedBudget) *Verifier {
	v.Seeds = b
	return v
}

// claimSeed draws the session's x0 from the budget when one is configured.
// The enrolled seed space is 64-bit; the challenge carries its low 32 bits
// (the x0 width), which both sides mix identically.
func (v *Verifier) claimSeed(ch *Challenge) error {
	if v.Seeds == nil {
		return nil
	}
	seed, err := v.Seeds.NextUnused()
	if err != nil {
		return fmt.Errorf("attest: claiming session seed: %w", err)
	}
	ch.PUFSeed = uint32(seed)
	return nil
}

// BudgetRemaining reports the verifier's remaining authentication budget,
// or -1 when no budget is bound (emulation-model verification is
// unlimited).
func (v *Verifier) BudgetRemaining() int {
	if v.Seeds == nil {
		return -1
	}
	return v.Seeds.Remaining()
}

// EnrollWithBudget registers a node whose verifier draws every session
// seed from the budget. A fleet of nodes may share one budget (a common
// enrollment pool) or hold one each; either way exhaustion surfaces as a
// terminal session error, distinct from both transport faults and
// integrity rejections.
func (f *Fleet) EnrollWithBudget(nodeID int, v *Verifier, agent ProverAgent, b SeedBudget) error {
	v.Seeds = b
	return f.Enroll(nodeID, v, agent)
}
