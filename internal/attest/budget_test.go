package attest

import (
	"errors"
	"testing"

	"pufatt/internal/crp"
	"pufatt/internal/telemetry"
)

func budgetDB(t *testing.T, f *fixture, n int) *crp.Database {
	t.Helper()
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	db, err := crp.Enroll(f.dev, seeds)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSessionConsumesSeedBudget(t *testing.T) {
	f := newFixture(t, 60)
	db := budgetDB(t, f, 3)
	f.verifier.WithSeedBudget(db)

	if got := f.verifier.BudgetRemaining(); got != 3 {
		t.Fatalf("BudgetRemaining = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		res, err := RunSession(f.verifier, f.prover, DefaultLink())
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if !res.Accepted {
			t.Fatalf("session %d rejected: %s", i, res.Reason)
		}
		if got := f.verifier.BudgetRemaining(); got != 2-i {
			t.Fatalf("after session %d: BudgetRemaining = %d, want %d", i, got, 2-i)
		}
	}
	// Budget spent: the next session must fail with the crp sentinel — a
	// terminal error, not a rejection verdict.
	if _, err := RunSession(f.verifier, f.prover, DefaultLink()); !errors.Is(err, crp.ErrExhausted) {
		t.Fatalf("exhausted budget: got %v, want ErrExhausted", err)
	}
}

func TestBudgetBindsSeedIntoChallenge(t *testing.T) {
	f := newFixture(t, 61)
	db := budgetDB(t, f, 2)
	f.verifier.WithSeedBudget(db)
	ch, err := f.verifier.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if ch.PUFSeed != 1 {
		t.Fatalf("challenge x0 = %#x, want the claimed seed 1", ch.PUFSeed)
	}
	// The claimed seed is consumed even if the session never completes.
	if db.Remaining() != 1 {
		t.Fatalf("Remaining = %d after claim", db.Remaining())
	}
	if err := db.Claim(1); !errors.Is(err, crp.ErrSeedUsed) {
		t.Fatalf("session seed still claimable: %v", err)
	}
}

func TestExhaustedBudgetNotRetriedAsTransport(t *testing.T) {
	f := newFixture(t, 62)
	db := budgetDB(t, f, 1)
	f.verifier.WithSeedBudget(db)
	if _, err := f.verifier.NewSession(); err != nil {
		t.Fatal(err)
	}

	// The budget is gone; a retried session must fail once, terminally,
	// without burning the transport budget on attempts.
	_, attempts, err := RunSessionRetry(f.verifier, f.prover, DefaultLink(),
		RetryPolicy{MaxAttempts: 5})
	if !errors.Is(err, crp.ErrExhausted) {
		t.Fatalf("got %v, want ErrExhausted", err)
	}
	if IsTransport(err) {
		t.Fatal("budget exhaustion classified as a transport fault")
	}
	if attempts != 1 {
		t.Fatalf("%d attempts burned on a terminal error", attempts)
	}
}

func TestUnbudgetedVerifierUnlimited(t *testing.T) {
	f := newFixture(t, 63)
	if got := f.verifier.BudgetRemaining(); got != -1 {
		t.Fatalf("BudgetRemaining without budget = %d, want -1", got)
	}
	if _, err := f.verifier.NewSession(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetSweepSharedBudgetRace sweeps a fleet whose verifiers all draw
// from one shared crp.Database — the acceptance scenario for the database
// race fix: concurrent NextUnused/Claim across sweep workers must neither
// double-issue a seed nor corrupt the budget count.
func TestFleetSweepSharedBudgetRace(t *testing.T) {
	const nodes = 12
	f := newFixture(t, 64)
	pool := budgetDB(t, f, nodes*2)

	fleet := NewFleet()
	fleet.Telemetry = NewTelemetry(telemetry.NewRegistry(), telemetry.NewTracer(8))
	for id := 0; id < nodes; id++ {
		nf := newFixture(t, 64) // same seed: identical honest devices
		if err := fleet.EnrollWithBudget(id, nf.verifier, nf.prover, pool); err != nil {
			t.Fatal(err)
		}
	}

	report := fleet.Sweep(DefaultLink())
	if len(report.Healthy) != nodes {
		t.Fatalf("%s", report)
	}
	if got := pool.Remaining(); got != nodes {
		t.Fatalf("shared budget Remaining = %d, want %d", got, nodes)
	}

	// Second sweep drains the pool exactly; nothing is double-counted.
	report = fleet.Sweep(DefaultLink())
	if len(report.Healthy) != nodes {
		t.Fatalf("second sweep: %s", report)
	}
	if got := pool.Remaining(); got != 0 {
		t.Fatalf("budget Remaining after two sweeps = %d, want 0", got)
	}

	// Third sweep: every node fails terminally (exhausted), none retried
	// as transport, and the parallel claims stay consistent. Exhaustion is
	// its own lifecycle regime — awaiting re-enrollment, not unreachable.
	report = fleet.Sweep(DefaultLink())
	if len(report.Exhausted) != nodes {
		t.Fatalf("exhausted sweep: %s", report)
	}
	if len(report.Unreachable) != 0 {
		t.Fatalf("exhausted nodes misclassified as unreachable: %s", report)
	}
	for _, r := range report.Results {
		if !errors.Is(r.Err, crp.ErrExhausted) {
			t.Fatalf("node %d: %v, want ErrExhausted", r.NodeID, r.Err)
		}
		if r.Attempts != 1 {
			t.Fatalf("node %d burned %d attempts on an exhausted budget", r.NodeID, r.Attempts)
		}
	}
}
