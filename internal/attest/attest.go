// Package attest implements the PUFatt remote attestation protocol of
// Section 3 (Figure 2): a verifier V challenges an embedded prover P with a
// random attestation challenge r0 and PUF challenge x0; P computes the
// attestation response by interleaving the SWATT-style memory checksum with
// PUF() invocations on its own ALUs; V accepts only if the response arrives
// within the time bound δ and matches the value recomputed through
// PUF.Emulate() (or a CRP database).
//
// The package works entirely on a simulated clock: the prover's compute
// time comes from the cycle-accurate MCU, and network costs from an
// explicit Link model (latency + bandwidth). This also makes the
// PUF-as-oracle bandwidth argument of Section 4.2 directly measurable.
package attest

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pufatt/internal/core"
)

// Challenge is the verifier's message to the prover.
type Challenge struct {
	Session uint64
	Nonce   uint32 // r0: the attestation challenge
	PUFSeed uint32 // x0: the initial PUF challenge perturbation
}

// EffectiveNonce combines r0 and x0 into the checksum's working nonce; both
// sides compute it identically.
func (c Challenge) EffectiveNonce() uint32 { return c.Nonce ^ core.Mix32(c.PUFSeed) }

// Response is the prover's message to the verifier: the checksum state and
// the helper-data stream of every PUF() invocation, in order.
type Response struct {
	Session uint64
	Tag     [8]uint32
	Helpers []uint64 // 8 per chunk, 26 significant bits each
}

// NewChallenge draws a fresh random challenge using crypto/rand (protocol
// nonces must be unpredictable; the simulation PRNGs are not used here).
func NewChallenge(session uint64) (Challenge, error) {
	var buf [8]byte
	if _, err := io.ReadFull(rand.Reader, buf[:]); err != nil {
		return Challenge{}, fmt.Errorf("attest: drawing challenge: %w", err)
	}
	return Challenge{
		Session: session,
		Nonce:   binary.LittleEndian.Uint32(buf[0:4]),
		PUFSeed: binary.LittleEndian.Uint32(buf[4:8]),
	}, nil
}

// Wire sizes in bits, used by the Link model and the bandwidth analysis.
const (
	ChallengeBits = (8 + 4 + 4) * 8
	// HelperBitsPerWord is the significant helper payload per raw response
	// (the RM(1,5) syndrome width; the 16-bit variant uses 11 of these).
	HelperBitsPerWord = 26
)

// Bits returns the response's wire size in bits (tag + packed helpers +
// framing).
func (r Response) Bits() int {
	return (8+32)*8 + len(r.Helpers)*HelperBitsPerWord + 32
}

// --- binary codec (length-prefixed frames over an io stream) ---

// ErrFrameTooLarge guards the decoder against hostile length prefixes.
var ErrFrameTooLarge = errors.New("attest: frame exceeds limit")

const maxFrame = 1 << 22

// WriteChallenge encodes a challenge frame.
func WriteChallenge(w io.Writer, c Challenge) error {
	buf := make([]byte, 4+8+4+4)
	binary.LittleEndian.PutUint32(buf[0:], 16)
	binary.LittleEndian.PutUint64(buf[4:], c.Session)
	binary.LittleEndian.PutUint32(buf[12:], c.Nonce)
	binary.LittleEndian.PutUint32(buf[16:], c.PUFSeed)
	_, err := w.Write(buf)
	return err
}

// ReadChallenge decodes a challenge frame.
func ReadChallenge(r io.Reader) (Challenge, error) {
	body, err := readFrame(r)
	if err != nil {
		return Challenge{}, err
	}
	if len(body) != 16 {
		return Challenge{}, fmt.Errorf("attest: challenge frame of %d bytes", len(body))
	}
	return Challenge{
		Session: binary.LittleEndian.Uint64(body[0:]),
		Nonce:   binary.LittleEndian.Uint32(body[8:]),
		PUFSeed: binary.LittleEndian.Uint32(body[12:]),
	}, nil
}

// WriteResponse encodes a response frame.
func WriteResponse(w io.Writer, resp Response) error {
	body := make([]byte, 8+32+4+8*len(resp.Helpers))
	binary.LittleEndian.PutUint64(body[0:], resp.Session)
	for i, c := range resp.Tag {
		binary.LittleEndian.PutUint32(body[8+4*i:], c)
	}
	binary.LittleEndian.PutUint32(body[40:], uint32(len(resp.Helpers)))
	for i, h := range resp.Helpers {
		binary.LittleEndian.PutUint64(body[44+8*i:], h)
	}
	head := make([]byte, 4)
	binary.LittleEndian.PutUint32(head, uint32(len(body)))
	if _, err := w.Write(head); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadResponse decodes a response frame.
func ReadResponse(r io.Reader) (Response, error) {
	body, err := readFrame(r)
	if err != nil {
		return Response{}, err
	}
	if len(body) < 44 {
		return Response{}, fmt.Errorf("attest: response frame of %d bytes", len(body))
	}
	var resp Response
	resp.Session = binary.LittleEndian.Uint64(body[0:])
	for i := range resp.Tag {
		resp.Tag[i] = binary.LittleEndian.Uint32(body[8+4*i:])
	}
	n := int(binary.LittleEndian.Uint32(body[40:]))
	if n < 0 || len(body) != 44+8*n {
		return Response{}, fmt.Errorf("attest: response frame with %d helpers but %d bytes", n, len(body))
	}
	resp.Helpers = make([]uint64, n)
	for i := range resp.Helpers {
		resp.Helpers[i] = binary.LittleEndian.Uint64(body[44+8*i:])
	}
	return resp, nil
}

func readFrame(r io.Reader) ([]byte, error) {
	head := make([]byte, 4)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(head)
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}
