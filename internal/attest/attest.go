// Package attest implements the PUFatt remote attestation protocol of
// Section 3 (Figure 2): a verifier V challenges an embedded prover P with a
// random attestation challenge r0 and PUF challenge x0; P computes the
// attestation response by interleaving the SWATT-style memory checksum with
// PUF() invocations on its own ALUs; V accepts only if the response arrives
// within the time bound δ and matches the value recomputed through
// PUF.Emulate() (or a CRP database).
//
// The package works entirely on a simulated clock: the prover's compute
// time comes from the cycle-accurate MCU, and network costs from an
// explicit Link model (latency + bandwidth). This also makes the
// PUF-as-oracle bandwidth argument of Section 4.2 directly measurable.
package attest

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync/atomic"

	"pufatt/internal/core"
	"pufatt/internal/telemetry"
)

// Challenge is the verifier's message to the prover.
//
// Epoch is the device reconfiguration epoch the verifier claimed the PUF
// seed under (PR 6). Epoch 0 — the manufacturing configuration — encodes
// as the original 16-byte challenge body, so epoch-unaware peers keep
// interoperating; a nonzero epoch travels as a trailing extension word,
// and a prover whose device sits at a different epoch fails the session
// closed as a rejection (never as transport).
type Challenge struct {
	Session uint64
	Nonce   uint32 // r0: the attestation challenge
	PUFSeed uint32 // x0: the initial PUF challenge perturbation
	Epoch   uint32 // device reconfiguration epoch the seed belongs to
}

// EffectiveNonce combines r0 and x0 into the checksum's working nonce; both
// sides compute it identically.
func (c Challenge) EffectiveNonce() uint32 { return c.Nonce ^ core.Mix32(c.PUFSeed) }

// Response is the prover's message to the verifier: the checksum state and
// the helper-data stream of every PUF() invocation, in order.
type Response struct {
	Session uint64
	Tag     [8]uint32
	Helpers []uint64 // 8 per chunk, 26 significant bits each
	// Epoch echoes the prover device's reconfiguration epoch, letting the
	// verifier distinguish "wrong device" from "right device, stale
	// enrollment". Like Challenge.Epoch it is wire-elided when zero.
	Epoch uint32
}

// NewChallenge draws a fresh random challenge using crypto/rand (protocol
// nonces must be unpredictable; the simulation PRNGs are not used here).
func NewChallenge(session uint64) (Challenge, error) {
	var buf [8]byte
	if _, err := io.ReadFull(rand.Reader, buf[:]); err != nil {
		return Challenge{}, fmt.Errorf("attest: drawing challenge: %w", err)
	}
	return Challenge{
		Session: session,
		Nonce:   binary.LittleEndian.Uint32(buf[0:4]),
		PUFSeed: binary.LittleEndian.Uint32(buf[4:8]),
	}, nil
}

// Wire sizes in bits, used by the Link model and the bandwidth analysis.
const (
	ChallengeBits = (8 + 4 + 4) * 8
	// HelperBitsPerWord is the significant helper payload per raw response
	// (the RM(1,5) syndrome width; the 16-bit variant uses 11 of these).
	HelperBitsPerWord = 26
)

// Bits returns the response's wire size in bits (tag + packed helpers +
// framing, plus the epoch extension word when present).
func (r Response) Bits() int {
	bits := (8+32)*8 + len(r.Helpers)*HelperBitsPerWord + 32
	if r.Epoch != 0 {
		bits += 32
	}
	return bits
}

// Bits returns the challenge's wire size in bits, including the epoch
// extension word when present.
func (c Challenge) Bits() int {
	if c.Epoch != 0 {
		return ChallengeBits + 32
	}
	return ChallengeBits
}

// --- binary codec (validated frames over an io stream) ---
//
// Every protocol message travels in a self-describing frame built for a
// lossy, adversarial channel:
//
//	offset 0  magic    uint16 LE (frameMagic)
//	offset 2  version  byte      (frameVersion)
//	offset 3  type     byte      (frameChallenge | frameResponse | frameTime)
//	offset 4  length   uint32 LE (body bytes, bounded by maxFrame)
//	offset 8  crc32    uint32 LE (IEEE, over the body)
//	offset 12 body
//
// The magic/version pair rejects cross-protocol and cross-version traffic
// before any allocation, the length bound defeats hostile prefixes, the
// type byte catches reordered or duplicated frames, and the CRC detects
// in-flight corruption (it is an integrity check against faults, not a MAC
// — authenticity comes from the PUF response itself).
//
// Version 2 frames additionally carry an optional extension block between
// the header and the payload, used today for cross-process trace
// propagation:
//
//	offset 0  extLen  uint16 LE (extension bytes; 0 = no extension)
//	offset 2  ext     extLen bytes
//	offset 2+extLen   payload (identical to the v1 body)
//
// The trace extension is traceID(8) || spanID(8) || crc32(4) over the 16 ID
// bytes. The frame-level CRC covers the whole v2 body (extension included),
// so channel corruption is still caught by the outer check; the inner CRC
// exists so a decoder that finds the IDs mangled (or an extension it does
// not understand) can DROP the trace context and keep the payload — trace
// propagation is observability, and observability must never kill a
// session. Writers emit v2 only while wire tracing is enabled
// (SetWireTracing); a fleet with pre-v2 peers — whose decoders reject
// unknown versions outright — disables it and loses nothing but stitching.

// Frame validation errors. All of them are transport-class faults: they say
// the channel mangled a frame, not that the prover failed attestation.
var (
	// ErrFrameTooLarge guards the decoder against hostile length prefixes.
	ErrFrameTooLarge = errors.New("attest: frame exceeds limit")
	// ErrBadMagic means the stream does not carry this protocol.
	ErrBadMagic = errors.New("attest: bad frame magic")
	// ErrBadVersion means the peer speaks an unknown protocol revision.
	ErrBadVersion = errors.New("attest: unsupported frame version")
	// ErrFrameType means a frame of the wrong type arrived (reordered or
	// duplicated traffic).
	ErrFrameType = errors.New("attest: unexpected frame type")
	// ErrChecksum means the frame body failed its CRC32 integrity check.
	ErrChecksum = errors.New("attest: frame checksum mismatch")
	// ErrTraceExt means a v2 frame's extension block is structurally
	// malformed (its declared length overruns the body). A mangled
	// extension *content* is not an error — the decoder drops the trace
	// context and keeps the payload — but a length that lies about the
	// frame's layout makes the payload boundary itself untrustworthy.
	ErrTraceExt = errors.New("attest: malformed frame extension")
)

const (
	frameMagic         uint16 = 0xA77E
	frameVersion       byte   = 1
	frameVersionTraced byte   = 2
	headerSize                = 12
	maxFrame                  = 1 << 22

	// traceExtSize is the trace extension block: traceID(8) + spanID(8) +
	// crc32(4) over the 16 ID bytes.
	traceExtSize = 20

	frameChallenge byte = 0x01
	frameResponse  byte = 0x02
	frameTime      byte = 0x03
)

// wireTracing gates v2 (trace-carrying) frame emission. On by default: two
// current binaries stitch their traces automatically. Fleets with pre-v2
// peers turn it off, because those decoders reject unknown versions.
var wireTracing atomic.Bool

func init() { wireTracing.Store(true) }

// SetWireTracing enables or disables trace-context propagation on outgoing
// frames (the version gate). Decoding is unconditional: v1 and v2 frames
// are always accepted.
func SetWireTracing(on bool) { wireTracing.Store(on) }

// WireTracing reports whether outgoing frames carry trace contexts.
func WireTracing() bool { return wireTracing.Load() }

// encodeTraceExt renders the 20-byte trace extension block.
func encodeTraceExt(tc telemetry.TraceContext) []byte {
	ext := make([]byte, traceExtSize)
	binary.LittleEndian.PutUint64(ext[0:], uint64(tc.Trace))
	binary.LittleEndian.PutUint64(ext[8:], uint64(tc.Span))
	binary.LittleEndian.PutUint32(ext[16:], crc32.ChecksumIEEE(ext[:16]))
	return ext
}

// decodeTraceExt recovers a trace context from an extension block. A block
// of the wrong size (an extension this revision does not know) or with a
// failed inner CRC yields the zero context — the payload's validity is the
// outer CRC's business, not this block's.
func decodeTraceExt(ext []byte) (telemetry.TraceContext, bool) {
	if len(ext) != traceExtSize {
		return telemetry.TraceContext{}, false
	}
	if crc32.ChecksumIEEE(ext[:16]) != binary.LittleEndian.Uint32(ext[16:]) {
		tel.TraceHeaders.With("corrupt").Inc()
		return telemetry.TraceContext{}, false
	}
	return telemetry.TraceContext{
		Trace: telemetry.TraceID(binary.LittleEndian.Uint64(ext[0:])),
		Span:  telemetry.SpanID(binary.LittleEndian.Uint64(ext[8:])),
	}, true
}

// writeFrame emits one validated v1 frame in a single Write call, so stream
// fault injectors (FaultyConn) can drop/corrupt/duplicate at frame
// granularity.
func writeFrame(w io.Writer, ftype byte, body []byte) error {
	return writeFrameCtx(w, ftype, body, telemetry.TraceContext{})
}

// writeFrameCtx emits one validated frame, attaching the trace context as a
// v2 extension when it is valid and wire tracing is enabled (a v1 frame
// otherwise). Still a single Write call.
func writeFrameCtx(w io.Writer, ftype byte, body []byte, tc telemetry.TraceContext) error {
	traced := tc.Valid() && wireTracing.Load()
	extra := 0
	if traced {
		extra = 2 + traceExtSize
	}
	if len(body)+extra > maxFrame {
		return ErrFrameTooLarge
	}
	buf := make([]byte, headerSize+extra+len(body))
	binary.LittleEndian.PutUint16(buf[0:], frameMagic)
	buf[3] = ftype
	if traced {
		buf[2] = frameVersionTraced
		binary.LittleEndian.PutUint16(buf[headerSize:], traceExtSize)
		copy(buf[headerSize+2:], encodeTraceExt(tc))
	} else {
		buf[2] = frameVersion
	}
	copy(buf[headerSize+extra:], body)
	binary.LittleEndian.PutUint32(buf[4:], uint32(extra+len(body)))
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(buf[headerSize:]))
	_, err := w.Write(buf)
	if err == nil {
		tel.FramesSent.With(frameTypeName(ftype)).Inc()
		if traced {
			tel.TraceHeaders.With("sent").Inc()
		}
	}
	return err
}

// readFrame decodes and validates one frame of the wanted type, discarding
// any trace context.
func readFrame(r io.Reader, want byte) ([]byte, error) {
	body, _, err := readFrameCtx(r, want)
	return body, err
}

// readFrameCtx decodes and validates one frame of the wanted type,
// returning its payload and any trace context it carried. Both frame
// versions are accepted: a v1 frame yields the zero context, and a v2 frame
// whose extension is unknown or fails its inner CRC yields the zero context
// with the payload intact.
func readFrameCtx(r io.Reader, want byte) ([]byte, telemetry.TraceContext, error) {
	var tc telemetry.TraceContext
	head := make([]byte, headerSize)
	if _, err := io.ReadFull(r, head); err != nil {
		// A clean EOF before any header byte is end-of-stream, not a
		// mangled frame; everything else is a transport rejection.
		if err != io.EOF {
			tel.FramesRejected.With("io").Inc()
		}
		return nil, tc, err
	}
	if binary.LittleEndian.Uint16(head[0:]) != frameMagic {
		tel.FramesRejected.With("magic").Inc()
		return nil, tc, ErrBadMagic
	}
	version := head[2]
	if version != frameVersion && version != frameVersionTraced {
		tel.FramesRejected.With("version").Inc()
		return nil, tc, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	if head[3] != want {
		tel.FramesRejected.With("type").Inc()
		return nil, tc, fmt.Errorf("%w: got 0x%02x, want 0x%02x", ErrFrameType, head[3], want)
	}
	n := binary.LittleEndian.Uint32(head[4:])
	if n > maxFrame {
		tel.FramesRejected.With("length").Inc()
		return nil, tc, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		tel.FramesRejected.With("io").Inc()
		return nil, tc, err
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(head[8:]) {
		tel.FramesRejected.With("checksum").Inc()
		return nil, tc, ErrChecksum
	}
	if version == frameVersionTraced {
		if len(body) < 2 {
			tel.FramesRejected.With("trace_ext").Inc()
			return nil, tc, fmt.Errorf("%w: v2 body of %d bytes", ErrTraceExt, len(body))
		}
		extLen := int(binary.LittleEndian.Uint16(body[0:]))
		if 2+extLen > len(body) {
			tel.FramesRejected.With("trace_ext").Inc()
			return nil, tc, fmt.Errorf("%w: extension of %d bytes in %d-byte body", ErrTraceExt, extLen, len(body))
		}
		if got, ok := decodeTraceExt(body[2 : 2+extLen]); ok {
			tc = got
			tel.TraceHeaders.With("received").Inc()
		}
		body = body[2+extLen:]
	}
	tel.FramesReceived.With(frameTypeName(want)).Inc()
	return body, tc, nil
}

// WriteChallenge encodes a challenge frame.
func WriteChallenge(w io.Writer, c Challenge) error {
	return WriteChallengeTraced(w, c, telemetry.TraceContext{})
}

// WriteChallengeTraced encodes a challenge frame carrying the verifier's
// trace context, so the prover can parent its serving span into the same
// trace. An invalid context (or disabled wire tracing) falls back to a
// plain v1 frame.
func WriteChallengeTraced(w io.Writer, c Challenge, tc telemetry.TraceContext) error {
	size := 16
	if c.Epoch != 0 {
		size = 20
	}
	body := make([]byte, size)
	binary.LittleEndian.PutUint64(body[0:], c.Session)
	binary.LittleEndian.PutUint32(body[8:], c.Nonce)
	binary.LittleEndian.PutUint32(body[12:], c.PUFSeed)
	if c.Epoch != 0 {
		binary.LittleEndian.PutUint32(body[16:], c.Epoch)
	}
	return writeFrameCtx(w, frameChallenge, body, tc)
}

// ReadChallenge decodes a challenge frame.
func ReadChallenge(r io.Reader) (Challenge, error) {
	ch, _, err := ReadChallengeTraced(r)
	return ch, err
}

// ReadChallengeTraced decodes a challenge frame and the verifier's trace
// context when the frame carried one (the zero context otherwise — v1
// frames and frames whose trace extension failed its inner CRC decode
// identically except for the context).
func ReadChallengeTraced(r io.Reader) (Challenge, telemetry.TraceContext, error) {
	body, tc, err := readFrameCtx(r, frameChallenge)
	if err != nil {
		return Challenge{}, tc, err
	}
	if len(body) != 16 && len(body) != 20 {
		return Challenge{}, tc, fmt.Errorf("attest: challenge frame of %d bytes", len(body))
	}
	ch := Challenge{
		Session: binary.LittleEndian.Uint64(body[0:]),
		Nonce:   binary.LittleEndian.Uint32(body[8:]),
		PUFSeed: binary.LittleEndian.Uint32(body[12:]),
	}
	if len(body) == 20 {
		ch.Epoch = binary.LittleEndian.Uint32(body[16:])
	}
	return ch, tc, nil
}

// WriteResponse encodes a response frame. A nonzero epoch travels as a
// trailing uint32 extension word; the two body lengths (44+8n vs 48+8n)
// are never congruent mod 8, so the decoder distinguishes them without a
// flag byte, and epoch-0 traffic is byte-identical to the pre-epoch wire.
func WriteResponse(w io.Writer, resp Response) error {
	size := 8 + 32 + 4 + 8*len(resp.Helpers)
	if resp.Epoch != 0 {
		size += 4
	}
	body := make([]byte, size)
	binary.LittleEndian.PutUint64(body[0:], resp.Session)
	for i, c := range resp.Tag {
		binary.LittleEndian.PutUint32(body[8+4*i:], c)
	}
	binary.LittleEndian.PutUint32(body[40:], uint32(len(resp.Helpers)))
	for i, h := range resp.Helpers {
		binary.LittleEndian.PutUint64(body[44+8*i:], h)
	}
	if resp.Epoch != 0 {
		binary.LittleEndian.PutUint32(body[44+8*len(resp.Helpers):], resp.Epoch)
	}
	return writeFrame(w, frameResponse, body)
}

// ReadResponse decodes a response frame.
func ReadResponse(r io.Reader) (Response, error) {
	body, err := readFrame(r, frameResponse)
	if err != nil {
		return Response{}, err
	}
	if len(body) < 44 {
		return Response{}, fmt.Errorf("attest: response frame of %d bytes", len(body))
	}
	var resp Response
	resp.Session = binary.LittleEndian.Uint64(body[0:])
	for i := range resp.Tag {
		resp.Tag[i] = binary.LittleEndian.Uint32(body[8+4*i:])
	}
	n := int(binary.LittleEndian.Uint32(body[40:]))
	switch {
	case n >= 0 && len(body) == 44+8*n:
		// pre-epoch body: epoch 0 implied
	case n >= 0 && len(body) == 48+8*n:
		resp.Epoch = binary.LittleEndian.Uint32(body[44+8*n:])
	default:
		return Response{}, fmt.Errorf("attest: response frame with %d helpers but %d bytes", n, len(body))
	}
	resp.Helpers = make([]uint64, n)
	for i := range resp.Helpers {
		resp.Helpers[i] = binary.LittleEndian.Uint64(body[44+8*i:])
	}
	return resp, nil
}
