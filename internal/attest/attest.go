// Package attest implements the PUFatt remote attestation protocol of
// Section 3 (Figure 2): a verifier V challenges an embedded prover P with a
// random attestation challenge r0 and PUF challenge x0; P computes the
// attestation response by interleaving the SWATT-style memory checksum with
// PUF() invocations on its own ALUs; V accepts only if the response arrives
// within the time bound δ and matches the value recomputed through
// PUF.Emulate() (or a CRP database).
//
// The package works entirely on a simulated clock: the prover's compute
// time comes from the cycle-accurate MCU, and network costs from an
// explicit Link model (latency + bandwidth). This also makes the
// PUF-as-oracle bandwidth argument of Section 4.2 directly measurable.
package attest

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"pufatt/internal/core"
)

// Challenge is the verifier's message to the prover.
type Challenge struct {
	Session uint64
	Nonce   uint32 // r0: the attestation challenge
	PUFSeed uint32 // x0: the initial PUF challenge perturbation
}

// EffectiveNonce combines r0 and x0 into the checksum's working nonce; both
// sides compute it identically.
func (c Challenge) EffectiveNonce() uint32 { return c.Nonce ^ core.Mix32(c.PUFSeed) }

// Response is the prover's message to the verifier: the checksum state and
// the helper-data stream of every PUF() invocation, in order.
type Response struct {
	Session uint64
	Tag     [8]uint32
	Helpers []uint64 // 8 per chunk, 26 significant bits each
}

// NewChallenge draws a fresh random challenge using crypto/rand (protocol
// nonces must be unpredictable; the simulation PRNGs are not used here).
func NewChallenge(session uint64) (Challenge, error) {
	var buf [8]byte
	if _, err := io.ReadFull(rand.Reader, buf[:]); err != nil {
		return Challenge{}, fmt.Errorf("attest: drawing challenge: %w", err)
	}
	return Challenge{
		Session: session,
		Nonce:   binary.LittleEndian.Uint32(buf[0:4]),
		PUFSeed: binary.LittleEndian.Uint32(buf[4:8]),
	}, nil
}

// Wire sizes in bits, used by the Link model and the bandwidth analysis.
const (
	ChallengeBits = (8 + 4 + 4) * 8
	// HelperBitsPerWord is the significant helper payload per raw response
	// (the RM(1,5) syndrome width; the 16-bit variant uses 11 of these).
	HelperBitsPerWord = 26
)

// Bits returns the response's wire size in bits (tag + packed helpers +
// framing).
func (r Response) Bits() int {
	return (8+32)*8 + len(r.Helpers)*HelperBitsPerWord + 32
}

// --- binary codec (validated frames over an io stream) ---
//
// Every protocol message travels in a self-describing frame built for a
// lossy, adversarial channel:
//
//	offset 0  magic    uint16 LE (frameMagic)
//	offset 2  version  byte      (frameVersion)
//	offset 3  type     byte      (frameChallenge | frameResponse | frameTime)
//	offset 4  length   uint32 LE (body bytes, bounded by maxFrame)
//	offset 8  crc32    uint32 LE (IEEE, over the body)
//	offset 12 body
//
// The magic/version pair rejects cross-protocol and cross-version traffic
// before any allocation, the length bound defeats hostile prefixes, the
// type byte catches reordered or duplicated frames, and the CRC detects
// in-flight corruption (it is an integrity check against faults, not a MAC
// — authenticity comes from the PUF response itself).

// Frame validation errors. All of them are transport-class faults: they say
// the channel mangled a frame, not that the prover failed attestation.
var (
	// ErrFrameTooLarge guards the decoder against hostile length prefixes.
	ErrFrameTooLarge = errors.New("attest: frame exceeds limit")
	// ErrBadMagic means the stream does not carry this protocol.
	ErrBadMagic = errors.New("attest: bad frame magic")
	// ErrBadVersion means the peer speaks an unknown protocol revision.
	ErrBadVersion = errors.New("attest: unsupported frame version")
	// ErrFrameType means a frame of the wrong type arrived (reordered or
	// duplicated traffic).
	ErrFrameType = errors.New("attest: unexpected frame type")
	// ErrChecksum means the frame body failed its CRC32 integrity check.
	ErrChecksum = errors.New("attest: frame checksum mismatch")
)

const (
	frameMagic   uint16 = 0xA77E
	frameVersion byte   = 1
	headerSize          = 12
	maxFrame            = 1 << 22

	frameChallenge byte = 0x01
	frameResponse  byte = 0x02
	frameTime      byte = 0x03
)

// writeFrame emits one validated frame in a single Write call, so stream
// fault injectors (FaultyConn) can drop/corrupt/duplicate at frame
// granularity.
func writeFrame(w io.Writer, ftype byte, body []byte) error {
	if len(body) > maxFrame {
		return ErrFrameTooLarge
	}
	buf := make([]byte, headerSize+len(body))
	binary.LittleEndian.PutUint16(buf[0:], frameMagic)
	buf[2] = frameVersion
	buf[3] = ftype
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(body))
	copy(buf[headerSize:], body)
	_, err := w.Write(buf)
	if err == nil {
		tel.FramesSent.With(frameTypeName(ftype)).Inc()
	}
	return err
}

// readFrame decodes and validates one frame of the wanted type.
func readFrame(r io.Reader, want byte) ([]byte, error) {
	head := make([]byte, headerSize)
	if _, err := io.ReadFull(r, head); err != nil {
		// A clean EOF before any header byte is end-of-stream, not a
		// mangled frame; everything else is a transport rejection.
		if err != io.EOF {
			tel.FramesRejected.With("io").Inc()
		}
		return nil, err
	}
	if binary.LittleEndian.Uint16(head[0:]) != frameMagic {
		tel.FramesRejected.With("magic").Inc()
		return nil, ErrBadMagic
	}
	if head[2] != frameVersion {
		tel.FramesRejected.With("version").Inc()
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, head[2])
	}
	if head[3] != want {
		tel.FramesRejected.With("type").Inc()
		return nil, fmt.Errorf("%w: got 0x%02x, want 0x%02x", ErrFrameType, head[3], want)
	}
	n := binary.LittleEndian.Uint32(head[4:])
	if n > maxFrame {
		tel.FramesRejected.With("length").Inc()
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		tel.FramesRejected.With("io").Inc()
		return nil, err
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(head[8:]) {
		tel.FramesRejected.With("checksum").Inc()
		return nil, ErrChecksum
	}
	tel.FramesReceived.With(frameTypeName(want)).Inc()
	return body, nil
}

// WriteChallenge encodes a challenge frame.
func WriteChallenge(w io.Writer, c Challenge) error {
	body := make([]byte, 16)
	binary.LittleEndian.PutUint64(body[0:], c.Session)
	binary.LittleEndian.PutUint32(body[8:], c.Nonce)
	binary.LittleEndian.PutUint32(body[12:], c.PUFSeed)
	return writeFrame(w, frameChallenge, body)
}

// ReadChallenge decodes a challenge frame.
func ReadChallenge(r io.Reader) (Challenge, error) {
	body, err := readFrame(r, frameChallenge)
	if err != nil {
		return Challenge{}, err
	}
	if len(body) != 16 {
		return Challenge{}, fmt.Errorf("attest: challenge frame of %d bytes", len(body))
	}
	return Challenge{
		Session: binary.LittleEndian.Uint64(body[0:]),
		Nonce:   binary.LittleEndian.Uint32(body[8:]),
		PUFSeed: binary.LittleEndian.Uint32(body[12:]),
	}, nil
}

// WriteResponse encodes a response frame.
func WriteResponse(w io.Writer, resp Response) error {
	body := make([]byte, 8+32+4+8*len(resp.Helpers))
	binary.LittleEndian.PutUint64(body[0:], resp.Session)
	for i, c := range resp.Tag {
		binary.LittleEndian.PutUint32(body[8+4*i:], c)
	}
	binary.LittleEndian.PutUint32(body[40:], uint32(len(resp.Helpers)))
	for i, h := range resp.Helpers {
		binary.LittleEndian.PutUint64(body[44+8*i:], h)
	}
	return writeFrame(w, frameResponse, body)
}

// ReadResponse decodes a response frame.
func ReadResponse(r io.Reader) (Response, error) {
	body, err := readFrame(r, frameResponse)
	if err != nil {
		return Response{}, err
	}
	if len(body) < 44 {
		return Response{}, fmt.Errorf("attest: response frame of %d bytes", len(body))
	}
	var resp Response
	resp.Session = binary.LittleEndian.Uint64(body[0:])
	for i := range resp.Tag {
		resp.Tag[i] = binary.LittleEndian.Uint32(body[8+4*i:])
	}
	n := int(binary.LittleEndian.Uint32(body[40:]))
	if n < 0 || len(body) != 44+8*n {
		return Response{}, fmt.Errorf("attest: response frame with %d helpers but %d bytes", n, len(body))
	}
	resp.Helpers = make([]uint64, n)
	for i := range resp.Helpers {
		resp.Helpers[i] = binary.LittleEndian.Uint64(body[44+8*i:])
	}
	return resp, nil
}
