package attest

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"sync"
	"time"

	"pufatt/internal/telemetry"
)

// This file carries the protocol over a real byte stream (net.Conn), for
// the remote-attestation example and the cross-process tests.
//
// Timing note: the prover's clock is *simulated* (cycle-accurate MCU), so a
// wall-clock measurement at the verifier would mix simulation-host speed
// into the security decision. The transport therefore conveys the prover's
// simulated compute time in a trailer frame, and the verifier combines it
// with the Link model. The adversary implementations in package attacks
// report their times from the same simulator that constrains their
// computation, so the measurement is exactly as trustworthy as a wall clock
// over a real device — it is produced by the physics model, not chosen by
// the adversary's code.
//
// The trailer is nonetheless adversary-influenced wire input and is
// validated like any other frame: it travels CRC-protected, and its value
// must be a finite, non-negative float. Without that check a hostile
// prover could ship NaN — which compares false against every bound, so
// `elapsed > δ` would never trigger — and bypass the timing decision
// entirely.

// ErrBadTime reports a compute-time trailer whose value is NaN, infinite,
// or negative — adversarial or mangled input that must not reach the
// verifier's timing comparison.
var ErrBadTime = errors.New("attest: invalid compute-time trailer")

// Serve answers attestation challenges on the stream until EOF. Each
// exchange is: challenge frame in, response frame + time trailer out.
func Serve(conn io.ReadWriter, agent ProverAgent) error {
	for {
		ch, tc, err := ReadChallengeTraced(conn)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("attest: serve: %w", err)
		}
		resp, compute, err := respondTraced(agent, ch, tc)
		if err != nil {
			return fmt.Errorf("attest: serve respond: %w", err)
		}
		if err := WriteResponse(conn, resp); err != nil {
			return err
		}
		if err := writeTime(conn, compute); err != nil {
			return err
		}
	}
}

// respondTraced runs the prover's computation inside a span adopted into
// the verifier's trace (when the challenge frame carried one), so both
// processes' /debug/traces rings show the same trace ID for the session. A
// challenge without a context (a v1 peer, or a mangled extension) gets a
// fresh local trace instead.
func respondTraced(agent ProverAgent, ch Challenge, tc telemetry.TraceContext) (Response, float64, error) {
	sp := tel.Tracer.StartSpanInTrace("attest.prove", tc)
	defer sp.Finish()
	sp.SetAttr("session", strconv.FormatUint(ch.Session, 10))
	resp, compute, err := agent.Respond(ch)
	if err != nil {
		sp.SetAttr("error", err.Error())
		return resp, compute, err
	}
	sp.SetAttr("compute_seconds", strconv.FormatFloat(compute, 'g', -1, 64))
	return resp, compute, nil
}

// ServeContext is Serve bound to a context: when ctx is cancelled or its
// deadline passes, the connection deadline fires and Serve returns.
func ServeContext(ctx context.Context, conn net.Conn, agent ProverAgent) error {
	stop := guardConn(ctx, conn)
	defer stop()
	err := Serve(conn, agent)
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// Request performs one attestation over the stream from the verifier side,
// using link to model the constrained last hop.
func Request(conn io.ReadWriter, v *Verifier, link Link) (Result, error) {
	return RequestContext(context.Background(), conn, v, link)
}

// RequestContext performs one attestation with a context governing the
// exchange: if conn is a net.Conn, the context's deadline is applied to it
// and cancellation aborts in-flight reads. A session that completes yields
// a verdict; every other failure mode is a transport fault.
func RequestContext(ctx context.Context, conn io.ReadWriter, v *Verifier, link Link) (Result, error) {
	res, _, err := requestTraced(ctx, conn, v, link, 0)
	return res, err
}

// requestTraced is RequestContext reporting the session's trace ID (for
// flight-dump correlation) and journalling each protocol step. The
// challenge frame carries the session span's context, so the remote
// prover's span lands in the same trace.
func requestTraced(ctx context.Context, conn io.ReadWriter, v *Verifier, link Link, attempt int) (Result, telemetry.TraceID, error) {
	sp := tel.Tracer.StartSpan("attest.session.tcp")
	defer sp.Finish()
	trace := sp.TraceID()
	device := v.Device
	if device != "" {
		sp.SetAttr("device", device)
	}
	if nc, ok := conn.(net.Conn); ok {
		stop := guardConn(ctx, nc)
		defer stop()
	}
	spc := sp.Child("challenge")
	ch, err := v.NewSession()
	spc.Finish()
	if err != nil {
		sp.SetAttr("error", err.Error())
		return Result{}, trace, err
	}
	sp.SetAttr("session", fmt.Sprintf("%d", ch.Session))
	tel.journal(telemetry.EventSessionOpen, trace, ch.Session, device, "")
	if v.Seeds != nil {
		remaining := v.BudgetRemaining()
		tel.Health.ObserveSeedClaim(device, remaining)
		tel.journal(telemetry.EventSeedClaim, trace, ch.Session, device,
			fmt.Sprintf("remaining=%d", remaining))
	}
	spx := sp.Child("puf_eval")
	if err := WriteChallengeTraced(conn, ch, sp.Context()); err != nil {
		spx.Finish()
		sp.SetAttr("error", err.Error())
		return Result{}, trace, ctxErr(ctx, err)
	}
	tel.journal(telemetry.EventChallengeSent, trace, ch.Session, device, "")
	resp, err := ReadResponse(conn)
	spx.Finish()
	if err != nil {
		sp.SetAttr("error", err.Error())
		return Result{}, trace, ctxErr(ctx, err)
	}
	if resp.Session != ch.Session {
		// A well-formed response for a *different* session is a stream
		// desync (a duplicated or replayed frame still in flight), not a
		// prover verdict: classify it as transport so the retry path
		// redials onto a clean stream.
		err := Transport(fmt.Errorf("%w: response for session %d, want %d",
			ErrStaleFrame, resp.Session, ch.Session))
		sp.SetAttr("error", err.Error())
		return Result{}, trace, err
	}
	compute, err := readTime(conn)
	if err != nil {
		sp.SetAttr("error", err.Error())
		return Result{}, trace, ctxErr(ctx, err)
	}
	tel.journal(telemetry.EventChecksumReceived, trace, ch.Session, device,
		fmt.Sprintf("helpers=%d compute=%.4gs", len(resp.Helpers), compute))
	spv := sp.Child("verify")
	elapsed := link.TransferSeconds(ChallengeBits) + compute + link.TransferSeconds(resp.Bits())
	// An injected jitter fault delivers frames intact but late. The wall
	// clock saw that latency but the timing decision is modelled (see the
	// timing note above), so a jitter-injecting conn reports the added
	// seconds here to be folded into the round trip it inflated.
	if j, ok := conn.(interface{ InjectedRTTSeconds() float64 }); ok {
		elapsed += j.InjectedRTTSeconds()
	}
	res := v.verifyObserved(tel, trace, ch, resp, elapsed)
	spv.Finish()

	// Segments for the modelled portions of the round trip (the local
	// clock only saw wire I/O; the security-relevant timing is modelled).
	base := sp.Start()
	d1 := secondsToDuration(link.TransferSeconds(ChallengeBits))
	d2 := secondsToDuration(compute)
	sp.Segment("link.challenge", base, d1)
	sp.Segment("compute", base.Add(d1), d2)
	sp.Segment("link.response", base.Add(d1+d2), secondsToDuration(link.TransferSeconds(resp.Bits())))

	sp.SetAttr("verdict", verdictLabel(res))
	tel.journal(telemetry.EventVerifyOutcome, trace, ch.Session, device,
		fmt.Sprintf("verdict=%s reason=%q elapsed=%.4gs", verdictLabel(res), res.Reason, elapsed))
	tel.observeHealth(device, res, attempt)
	return res, trace, nil
}

// RequestWithRetry attests with the given retry policy, dialing a fresh
// connection per attempt (a faulted stream cannot be trusted to be in frame
// sync, so retries never reuse it). Only transport faults consume the
// budget; a verdict — accepted or rejected — is returned on the attempt
// that produced it and is never retried. It reports the verdict, the number
// of attempts, and the terminal error if the budget was exhausted.
func RequestWithRetry(ctx context.Context, dial func() (net.Conn, error), v *Verifier, link Link, policy RetryPolicy) (Result, int, error) {
	var (
		res   Result
		trace telemetry.TraceID
	)
	attempts, err := policy.do(tel, v.Device, func(attempt int) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		attemptCtx, cancel := ctx, func() {}
		if policy.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, policy.AttemptTimeout)
		}
		defer cancel()
		conn, err := dial()
		if err != nil {
			return Transport(err)
		}
		defer conn.Close()
		var opErr error
		res, trace, opErr = requestTraced(attemptCtx, conn, v, link, attempt)
		if opErr != nil && ctx.Err() == nil && attemptCtx.Err() != nil {
			// The per-attempt deadline fired, not the caller's context:
			// report it as a link timeout so the budget logic retries.
			return Transport(fmt.Errorf("%w: attempt timed out after %v", ErrLinkTimeout, policy.AttemptTimeout))
		}
		return opErr
	})
	switch {
	case err != nil && IsTransport(err):
		tel.Health.Observe(v.Device, telemetry.SessionObservation{
			Outcome: telemetry.OutcomeTransport, Retries: attempts - 1,
		})
		if _, derr := tel.flightDump("transport", trace); derr != nil {
			tel.journal(telemetry.EventVerifyOutcome, trace, 0, v.Device, "flight dump failed: "+derr.Error())
		}
	case err == nil && !res.Accepted:
		if _, derr := tel.flightDump("rejected", trace); derr != nil {
			tel.journal(telemetry.EventVerifyOutcome, trace, 0, v.Device, "flight dump failed: "+derr.Error())
		}
	}
	return res, attempts, err
}

// ctxErr prefers the context's error over the I/O error it induced.
func ctxErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// guardConn binds a connection to a context: it applies the context
// deadline and, on cancellation, forces in-flight I/O to fail by expiring
// the connection deadline. The returned stop function releases the watcher
// and does not return until it has exited (it does not close the
// connection).
//
// Two lifecycle rules keep the watcher honest. A context that is already
// cancelled at entry expires the deadline synchronously and spawns
// nothing — the caller's very first read must fail, not race a goroutine
// wake-up. And stop() joins the watcher before returning: without the
// join, a cancellation racing stop() could fire SetDeadline *after* the
// session ended and the caller had reset deadlines for the next exchange,
// poisoning a healthy connection — and every guarded session would leak a
// goroutine for as long as its context stayed live.
func guardConn(ctx context.Context, conn net.Conn) (stop func()) {
	if d, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(d)
	}
	if ctx.Done() == nil {
		return func() {}
	}
	if ctx.Err() != nil {
		_ = conn.SetDeadline(time.Unix(1, 0)) // long past: abort I/O now
		return func() {}
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-ctx.Done():
			_ = conn.SetDeadline(time.Unix(1, 0)) // long past: abort I/O now
		case <-done:
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}

// Server runs a prover service over TCP. Unlike the bare ListenAndServe
// helper it predates, it surfaces accept and per-connection faults through
// OnError instead of discarding them, applies a per-exchange I/O deadline,
// and shuts down deterministically: Close stops the listener, unblocks
// every in-flight connection, and waits for all handlers to drain before
// returning.
type Server struct {
	// Agent answers the challenges.
	Agent ProverAgent
	// Timeout bounds each connection's I/O between exchanges (0 = none).
	Timeout time.Duration
	// OnError observes accept and per-connection serve faults (it is never
	// called for clean EOF or for the server's own shutdown). It may be
	// called concurrently; nil discards.
	OnError func(error)
	// DrainTimeout bounds how long Close waits for in-flight handlers to
	// drain after the listener and every tracked connection have been
	// closed. Zero preserves the historical behaviour: wait forever. With a
	// bound, an agent stuck mid-Respond (closing the conn only unblocks
	// I/O, not computation) cannot wedge shutdown: Close returns a
	// *DrainError naming how many handlers were abandoned.
	DrainTimeout time.Duration

	mu         sync.Mutex
	ln         net.Listener
	conns      map[net.Conn]struct{}
	wg         sync.WaitGroup
	closed     bool
	adminClose func() error

	// agentMu serialises Agent.Respond across connections. The agent is one
	// physical device — a stateful memory image and PUF port that answer one
	// challenge at a time — but each connection is served on its own
	// goroutine, so two clients (or one client whose duplicated frame left a
	// second challenge in flight) would otherwise run Respond concurrently
	// over shared device state.
	agentMu sync.Mutex
}

// Start listens on the TCP address and begins serving in the background.
func (s *Server) Start(addr string) (net.Addr, error) {
	if s.Agent == nil {
		return nil, errors.New("attest: Server without Agent")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, net.ErrClosed
	}
	s.ln = ln
	s.conns = make(map[net.Conn]struct{})
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if !s.isClosed() {
				s.report(fmt.Errorf("attest: accept: %w", err))
			}
			return
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

// serveConn runs the exchange loop with the per-exchange deadline.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		if s.Timeout > 0 {
			_ = conn.SetDeadline(time.Now().Add(s.Timeout))
		}
		ch, tc, err := ReadChallengeTraced(conn)
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			if !s.isClosed() {
				s.report(fmt.Errorf("attest: serve: %w", err))
			}
			return
		}
		s.agentMu.Lock()
		resp, compute, err := respondTraced(s.Agent, ch, tc)
		s.agentMu.Unlock()
		if err != nil {
			s.report(fmt.Errorf("attest: serve respond: %w", err))
			return
		}
		if err := WriteResponse(conn, resp); err != nil {
			s.report(err)
			return
		}
		if err := writeTime(conn, compute); err != nil {
			s.report(err)
			return
		}
	}
}

// DrainError reports a shutdown that hit its drain deadline: the listener
// and every connection are closed, but some handler goroutines (an agent
// wedged mid-Respond, typically) had not exited when the timeout expired.
type DrainError struct {
	Timeout time.Duration
	// Handlers is the number of connections still tracked when the
	// deadline expired — a lower bound on the goroutines abandoned.
	Handlers int
}

func (e *DrainError) Error() string {
	return fmt.Sprintf("attest: server close: %d handler(s) still draining after %v", e.Handlers, e.Timeout)
}

// Close shuts the server down deterministically: no new connections are
// accepted, in-flight connections are unblocked and drained, and Close
// returns only after every handler goroutine has exited — or, when a
// DrainTimeout is set, after that bound, reporting a *DrainError for the
// handlers it had to abandon. Close is idempotent; a second call waits out
// the same drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.drain()
	}
	s.closed = true
	ln := s.ln
	adminClose := s.adminClose
	var open []net.Conn
	for c := range s.conns {
		open = append(open, c)
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	if adminClose != nil {
		_ = adminClose()
	}
	for _, c := range open {
		_ = c.Close()
	}
	if derr := s.drain(); derr != nil && err == nil {
		err = derr
	}
	return err
}

// drain waits for the handler goroutines, bounded by DrainTimeout when one
// is set.
func (s *Server) drain() error {
	if s.DrainTimeout <= 0 {
		s.wg.Wait()
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(s.DrainTimeout)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			// Every handler has untracked its connection; what remains is
			// goroutine teardown. One more (unbounded, but now certain to be
			// brief) wait beats reporting a phantom leak.
			s.wg.Wait()
			return nil
		}
		return &DrainError{Timeout: s.DrainTimeout, Handlers: n}
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

func (s *Server) report(err error) {
	if s.OnError != nil {
		s.OnError(err)
	}
}

// ListenAndServe runs a prover service on the TCP address until the
// returned close function is called; each connection is served on its own
// goroutine. It is the fire-and-forget form of Server (errors discarded);
// services that need fault visibility or timeouts should use Server.
func ListenAndServe(addr string, agent ProverAgent) (net.Addr, func() error, error) {
	srv := &Server{Agent: agent}
	a, err := srv.Start(addr)
	if err != nil {
		return nil, nil, err
	}
	return a, srv.Close, nil
}

// writeTime emits the compute-time trailer frame. The value is validated on
// the way out too: an honest simulator never produces a non-finite time, so
// failing fast here beats a confusing rejection at the peer.
func writeTime(w io.Writer, seconds float64) error {
	if err := validTime(seconds); err != nil {
		return err
	}
	var body [8]byte
	binary.LittleEndian.PutUint64(body[:], math.Float64bits(seconds))
	return writeFrame(w, frameTime, body[:])
}

// readTime decodes and validates the compute-time trailer. Any float64 bit
// pattern can arrive off the wire; only finite, non-negative values may
// reach the timing decision.
func readTime(r io.Reader) (float64, error) {
	body, err := readFrame(r, frameTime)
	if err != nil {
		return 0, err
	}
	if len(body) != 8 {
		return 0, fmt.Errorf("%w: trailer of %d bytes", ErrBadTime, len(body))
	}
	seconds := math.Float64frombits(binary.LittleEndian.Uint64(body))
	if err := validTime(seconds); err != nil {
		return 0, err
	}
	return seconds, nil
}

// validTime rejects NaN, infinite, and negative compute times.
func validTime(seconds float64) error {
	if math.IsNaN(seconds) || math.IsInf(seconds, 0) || seconds < 0 {
		return fmt.Errorf("%w: %v", ErrBadTime, seconds)
	}
	return nil
}
