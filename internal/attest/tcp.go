package attest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
)

// This file carries the protocol over a real byte stream (net.Conn), for
// the remote-attestation example and the cross-process tests.
//
// Timing note: the prover's clock is *simulated* (cycle-accurate MCU), so a
// wall-clock measurement at the verifier would mix simulation-host speed
// into the security decision. The transport therefore conveys the prover's
// simulated compute time in a trailer frame, and the verifier combines it
// with the Link model. The adversary implementations in package attacks
// report their times from the same simulator that constrains their
// computation, so the measurement is exactly as trustworthy as a wall clock
// over a real device — it is produced by the physics model, not chosen by
// the adversary's code.

// Serve answers attestation challenges on the stream until EOF. Each
// exchange is: challenge frame in, response frame + time trailer out.
func Serve(conn io.ReadWriter, agent ProverAgent) error {
	for {
		ch, err := ReadChallenge(conn)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("attest: serve: %w", err)
		}
		resp, compute, err := agent.Respond(ch)
		if err != nil {
			return fmt.Errorf("attest: serve respond: %w", err)
		}
		if err := WriteResponse(conn, resp); err != nil {
			return err
		}
		if err := writeTime(conn, compute); err != nil {
			return err
		}
	}
}

// Request performs one attestation over the stream from the verifier side,
// using link to model the constrained last hop.
func Request(conn io.ReadWriter, v *Verifier, link Link) (Result, error) {
	ch, err := v.NewSession()
	if err != nil {
		return Result{}, err
	}
	if err := WriteChallenge(conn, ch); err != nil {
		return Result{}, err
	}
	resp, err := ReadResponse(conn)
	if err != nil {
		return Result{}, err
	}
	compute, err := readTime(conn)
	if err != nil {
		return Result{}, err
	}
	elapsed := link.TransferSeconds(ChallengeBits) + compute + link.TransferSeconds(resp.Bits())
	return v.Verify(ch, resp, elapsed), nil
}

// ListenAndServe runs a prover service on the TCP address until the
// listener is closed; each connection is served on its own goroutine.
// The returned function closes the listener.
func ListenAndServe(addr string, agent ProverAgent) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_ = Serve(conn, agent)
			}()
		}
	}()
	return ln.Addr(), ln.Close, nil
}

func writeTime(w io.Writer, seconds float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(seconds))
	_, err := w.Write(buf[:])
	return err
}

func readTime(r io.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}
