package attest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"

	"pufatt/internal/telemetry"
)

// switchableAgent simulates a node whose radio can be broken and repaired
// between sweeps: while broken every session fails as a transport fault.
type switchableAgent struct {
	mu     sync.Mutex
	broken bool
	inner  ProverAgent
}

func (a *switchableAgent) setBroken(b bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.broken = b
}

func (a *switchableAgent) Respond(ch Challenge) (Response, float64, error) {
	a.mu.Lock()
	broken := a.broken
	a.mu.Unlock()
	if broken {
		return Response{}, 0, Transport(errors.New("radio down"))
	}
	return a.inner.Respond(ch)
}

// newFleetTelemetry gives a test its own instrument set so counter
// assertions are exact with no bleed from other tests.
func newFleetTelemetry() *Telemetry {
	return NewTelemetry(telemetry.NewRegistry(), telemetry.NewTracer(8))
}

// TestQuarantineLifecycleTelemetry walks one node through the full breaker
// lifecycle — healthy → quarantined → failed half-open probe → successful
// probe (reinstated by recovery) → quarantined again → operator Reinstate —
// and asserts the quarantine_transitions_total counter and open-quarantine
// gauge track every step.
func TestQuarantineLifecycleTelemetry(t *testing.T) {
	f := newFixture(t, 31)
	agent := &switchableAgent{inner: f.prover, broken: true}
	fleet := NewFleet()
	T := newFleetTelemetry()
	fleet.Telemetry = T
	if err := fleet.Enroll(1, f.verifier, agent); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	link := DefaultLink()
	opts := SweepOptions{Retry: RetryPolicy{MaxAttempts: 1}, ProbeQuarantined: true}

	transitions := func(kind string) uint64 { return T.QuarantineTransitions.With(kind).Value() }

	// Threshold consecutive unreachable sweeps open the breaker.
	for i := 0; i < DefaultQuarantineThreshold; i++ {
		rep := fleet.SweepWithOptions(ctx, link, opts)
		if len(rep.Unreachable) != 1 {
			t.Fatalf("sweep %d: unreachable = %v, want [1]", i, rep.Unreachable)
		}
	}
	if got := fleet.Quarantined(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("quarantined = %v, want [1]", fleet.Quarantined())
	}
	if got := transitions(transitionEnter); got != 1 {
		t.Fatalf("enter transitions = %d, want 1", got)
	}
	if got := T.QuarantineOpen.Value(); got != 1 {
		t.Fatalf("open gauge = %v, want 1", got)
	}

	// Still broken: the half-open probe fails, quarantine holds.
	rep := fleet.SweepWithOptions(ctx, link, opts)
	if len(rep.Quarantined) != 1 {
		t.Fatalf("probe sweep: quarantined = %v, want [1]", rep.Quarantined)
	}
	if rep.Stats.Probes != 1 {
		t.Fatalf("probe sweep: stats.Probes = %d, want 1", rep.Stats.Probes)
	}
	if got := transitions(transitionProbeFailed); got != 1 {
		t.Fatalf("probe_failed transitions = %d, want 1", got)
	}

	// Repaired: the next probe succeeds and lifts the quarantine.
	agent.setBroken(false)
	rep = fleet.SweepWithOptions(ctx, link, opts)
	if len(rep.Healthy) != 1 {
		t.Fatalf("recovery sweep: healthy = %v, want [1]", rep.Healthy)
	}
	if rep.Stats.QuarantineLifted != 1 {
		t.Fatalf("recovery sweep: stats.QuarantineLifted = %d, want 1", rep.Stats.QuarantineLifted)
	}
	if got := transitions(transitionExit); got != 1 {
		t.Fatalf("exit transitions = %d, want 1", got)
	}
	if got := T.QuarantineOpen.Value(); got != 0 {
		t.Fatalf("open gauge after recovery = %v, want 0", got)
	}
	if got := fleet.Quarantined(); len(got) != 0 {
		t.Fatalf("still quarantined after recovery: %v", got)
	}

	// Break it again, re-quarantine, and let the operator reinstate.
	agent.setBroken(true)
	for i := 0; i < DefaultQuarantineThreshold; i++ {
		fleet.SweepWithOptions(ctx, link, opts)
	}
	if got := transitions(transitionEnter); got != 2 {
		t.Fatalf("enter transitions after relapse = %d, want 2", got)
	}
	fleet.Reinstate(1)
	if got := transitions(transitionReinstate); got != 1 {
		t.Fatalf("reinstate transitions = %d, want 1", got)
	}
	if got := T.QuarantineOpen.Value(); got != 0 {
		t.Fatalf("open gauge after reinstate = %v, want 0", got)
	}

	// Per-node outcome counters saw every sweep.
	if got := T.SweepNodes.With(outcomeUnreachable).Value(); got != uint64(2*DefaultQuarantineThreshold) {
		t.Errorf("unreachable outcomes = %d, want %d", got, 2*DefaultQuarantineThreshold)
	}
	if got := T.SweepNodes.With(outcomeQuarantined).Value(); got != 1 {
		t.Errorf("quarantined outcomes = %d, want 1", got)
	}
	if got := T.SweepNodes.With(outcomeHealthy).Value(); got != 1 {
		t.Errorf("healthy outcomes = %d, want 1", got)
	}
}

// TestSweepStats checks the per-sweep aggregate: a healthy fleet reports
// one attempt and one completed session per node, with a coherent RTT
// summary and sweep counters ticking on the fleet's own registry.
func TestSweepStats(t *testing.T) {
	fleet, _, _ := buildFleet(t, 3)
	T := newFleetTelemetry()
	fleet.Telemetry = T
	rep := fleet.SweepWithOptions(context.Background(), DefaultLink(), DefaultSweepOptions())
	s := rep.Stats
	if s.Attempts != 3 || s.Retries != 0 || s.Sessions != 3 {
		t.Fatalf("stats = %+v, want 3 attempts, 0 retries, 3 sessions", s)
	}
	if !(s.RTTMin > 0 && s.RTTMin <= s.RTTMean && s.RTTMean <= s.RTTMax) {
		t.Fatalf("incoherent RTT summary: min=%v mean=%v max=%v", s.RTTMin, s.RTTMean, s.RTTMax)
	}
	if s.Elapsed < 0 {
		t.Fatalf("negative sweep elapsed: %v", s.Elapsed)
	}
	if got := T.Sweeps.Value(); got != 1 {
		t.Fatalf("attest_sweeps_total = %d, want 1", got)
	}
	if got := T.SweepDuration.Count(); got != 1 {
		t.Fatalf("sweep duration observations = %d, want 1", got)
	}
}

// TestSweepCancellation: a cancelled context abandons the sweep without
// touching any node's circuit breaker — cancellation is not evidence of
// unreachability.
func TestSweepCancellation(t *testing.T) {
	fleet, _, _ := buildFleet(t, 4)
	T := newFleetTelemetry()
	fleet.Telemetry = T
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	rep := fleet.SweepWithOptions(ctx, DefaultLink(), DefaultSweepOptions())
	if rep.Stats.Cancelled != 4 {
		t.Fatalf("stats.Cancelled = %d, want 4", rep.Stats.Cancelled)
	}
	if len(rep.Unreachable) != 4 {
		t.Fatalf("unreachable = %v, want all 4 nodes", rep.Unreachable)
	}
	for _, r := range rep.Results {
		if !errors.Is(r.Err, ErrCancelled) {
			t.Fatalf("node %d err = %v, want ErrCancelled", r.NodeID, r.Err)
		}
	}
	if got := T.QuarantineTransitions.With(transitionEnter).Value(); got != 0 {
		t.Fatalf("cancelled sweep moved a circuit breaker: %d enter transitions", got)
	}

	// The nodes were never given a chance: a live sweep finds them healthy.
	rep = fleet.SweepWithOptions(context.Background(), DefaultLink(), DefaultSweepOptions())
	if len(rep.Healthy) != 4 {
		t.Fatalf("post-cancel sweep healthy = %v, want all 4", rep.Healthy)
	}
}

// TestFaultTelemetryCounters asserts every injectable fault class surfaces
// in the attest_faults_injected_total counter when it fires. No sleeping:
// the injected faults are deterministic and synchronous.
func TestFaultTelemetryCounters(t *testing.T) {
	f := newFixture(t, 33)
	for _, class := range []FaultClass{FaultDrop, FaultCorrupt, FaultTruncate, FaultDelay, FaultDuplicate} {
		t.Run(class.String(), func(t *testing.T) {
			before := tel.FaultsInjected.With(class.String()).Value()
			link := NewFaultyLink(f.prover, PlanFor(class, 1, 1), 91)
			if _, err := RunSession(f.verifier, link, DefaultLink()); err == nil {
				t.Fatal("certain fault did not surface as an error")
			}
			if got := tel.FaultsInjected.With(class.String()).Value() - before; got != 1 {
				t.Fatalf("faults_injected{%s} delta = %d, want 1", class, got)
			}
		})
	}
}

// TestFaultEventLog checks satellite 6: every injected fault emits one line
// of JSON carrying (class, seed, frame) — enough to replay the schedule.
func TestFaultEventLog(t *testing.T) {
	f := newFixture(t, 34)
	var buf bytes.Buffer
	link := NewFaultyLink(f.prover, FaultPlan{Drop: 1, MaxFaults: 2}, 4242)
	link.SetLog(&buf)
	policy := RetryPolicy{MaxAttempts: 3}
	res, attempts, err := RunSessionRetry(f.verifier, link, DefaultLink(), policy)
	if err != nil || !res.Accepted {
		t.Fatalf("retry did not recover: attempts=%d err=%v", attempts, err)
	}
	var events []FaultEvent
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev FaultEvent
		if jerr := json.Unmarshal(sc.Bytes(), &ev); jerr != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), jerr)
		}
		events = append(events, ev)
	}
	if len(events) != 2 {
		t.Fatalf("%d fault events, want 2 (MaxFaults)", len(events))
	}
	lastFrame := -1
	for i, ev := range events {
		if ev.Event != "fault_injected" || ev.Class != "drop" || ev.Seed != 4242 {
			t.Fatalf("event %d = %+v, want drop under seed 4242", i, ev)
		}
		if ev.Total != i+1 {
			t.Fatalf("event %d total = %d, want %d", i, ev.Total, i+1)
		}
		if ev.Frame <= lastFrame {
			t.Fatalf("event %d frame %d not after %d", i, ev.Frame, lastFrame)
		}
		lastFrame = ev.Frame
	}
}

// expositionLine matches one Prometheus text-format sample.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$`)

// TestAdminMetricsEndpoint is the acceptance check for the admin surface:
// a TCP attestation session populates the default registry, and /metrics
// then serves valid Prometheus exposition including the attest_rtt_seconds
// histogram buckets and retry_attempts_total; /debug/vars serves JSON and
// the pprof handlers answer.
func TestAdminMetricsEndpoint(t *testing.T) {
	f := newFixture(t, 35)
	srv := &Server{Agent: f.prover}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	admin, err := srv.StartAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// One real session over the wire (frames + RTT), one simulated retry
	// loop (retry_attempts_total) — both land in the default registry.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Request(conn, f.verifier, DefaultLink())
	conn.Close()
	if err != nil || !res.Accepted {
		t.Fatalf("TCP session failed: %v / %+v", err, res)
	}
	if _, _, err := RunSessionRetry(f.verifier, f.prover, DefaultLink(), RetryPolicy{MaxAttempts: 1}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (string, int) {
		t.Helper()
		resp, gerr := http.Get("http://" + admin.String() + path)
		if gerr != nil {
			t.Fatalf("GET %s: %v", path, gerr)
		}
		defer resp.Body.Close()
		body, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			t.Fatalf("GET %s read: %v", path, rerr)
		}
		return string(body), resp.StatusCode
	}

	metrics, code := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var rttBuckets, retryTotal int
	for _, line := range strings.Split(metrics, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("invalid exposition line: %q", line)
		}
		if strings.HasPrefix(line, "attest_rtt_seconds_bucket{") {
			rttBuckets++
		}
		if strings.HasPrefix(line, "retry_attempts_total ") {
			retryTotal++
		}
	}
	if rttBuckets < 2 {
		t.Fatalf("attest_rtt_seconds histogram missing: %d bucket lines", rttBuckets)
	}
	if retryTotal != 1 {
		t.Fatalf("retry_attempts_total sample lines = %d, want 1", retryTotal)
	}
	if tel.FramesSent.With("challenge").Value() == 0 {
		t.Fatal("TCP session did not tick attest_frames_sent_total{type=challenge}")
	}

	vars, code := get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := decoded["attest_rtt_seconds"]; !ok {
		t.Fatal("/debug/vars missing attest_rtt_seconds")
	}

	if _, code := get("/debug/traces"); code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", code)
	}
	if _, code := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

// TestServerCloseStopsAdmin ties the admin endpoint to the server
// lifecycle: after Close, the admin port no longer answers.
func TestServerCloseStopsAdmin(t *testing.T) {
	f := newFixture(t, 36)
	srv := &Server{Agent: f.prover}
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	admin, err := srv.StartAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Dial("tcp", admin.String()); err == nil {
		t.Fatal("admin endpoint still accepting after Server.Close")
	}
}
