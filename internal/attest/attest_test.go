package attest

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
)

// fixture builds an honest prover/verifier pair over a 32-bit device (the
// RM(1,5) sketch with majority voting makes recovery failures ~1e-9, so
// these tests are deterministic in practice).
type fixture struct {
	dev      *core.Device
	prover   *Prover
	verifier *Verifier
	params   swatt.Params
	image    *swatt.Image
}

func newFixture(t *testing.T, seed uint64) *fixture {
	t.Helper()
	dev := core.MustNewDevice(core.MustNewDesign(core.DefaultConfig()), rng.New(seed), 0)
	port := mcu.MustNewDevicePort(dev)
	p := swatt.Params{MemWords: 1024, Chunks: 4, BlocksPerChunk: 2, PRG: swatt.PRGMix32}
	payload := make([]uint32, 200)
	src := rng.New(seed + 1)
	for i := range payload {
		payload[i] = src.Uint32()
	}
	image, err := swatt.BuildImage(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	prover := NewProver(image.Clone(), port, 1)
	prover.TuneClock(0.98)
	verifier, err := NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
	if err != nil {
		t.Fatal(err)
	}
	// Seeded nonce stream: every session in the suite is exactly
	// reproducible, so verdict assertions cannot flake on a rare
	// noise-induced miss from a crypto/rand nonce.
	verifier.Nonces = rng.New(seed + 2).Uint32
	return &fixture{dev: dev, prover: prover, verifier: verifier, params: p, image: image}
}

func fixedChallenge(session uint64, nonce uint32) Challenge {
	return Challenge{Session: session, Nonce: nonce, PUFSeed: nonce ^ 0xabcd1234}
}

func TestHonestProverAccepted(t *testing.T) {
	f := newFixture(t, 1)
	for i := 0; i < 3; i++ {
		ch := fixedChallenge(uint64(i+1), 0x1000+uint32(i))
		resp, compute, err := f.prover.Respond(ch)
		if err != nil {
			t.Fatal(err)
		}
		link := DefaultLink()
		elapsed := link.TransferSeconds(ChallengeBits) + compute + link.TransferSeconds(resp.Bits())
		res := f.verifier.Verify(ch, resp, elapsed)
		if !res.Accepted {
			t.Fatalf("honest prover rejected (run %d): %s", i, res.Reason)
		}
	}
}

func TestTamperedMemoryRejected(t *testing.T) {
	f := newFixture(t, 2)
	// Infect a 50-word region on the prover (naive malware: no forgery
	// logic, so the checksum itself diverges). A region, not a single
	// word, so the 64-round traversal samples it with near certainty.
	for i := 0; i < 50; i++ {
		f.prover.Image.Mem[f.image.Layout.PayloadAddr+i] ^= 0x1
	}
	ch := fixedChallenge(1, 0x2000)
	resp, compute, err := f.prover.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	res := f.verifier.Verify(ch, resp, compute)
	if res.Accepted {
		t.Fatal("tampered prover accepted")
	}
	if !strings.Contains(res.Reason, "mismatch") {
		t.Errorf("unexpected reason: %s", res.Reason)
	}
}

func TestImpersonatingDeviceRejected(t *testing.T) {
	// A different chip (same design, same software) must fail: its PUF
	// responses decode to different z values than the enrolled device's
	// emulator predicts.
	f := newFixture(t, 3)
	otherDev := core.MustNewDevice(f.dev.Design(), rng.New(3), 99)
	otherPort := mcu.MustNewDevicePort(otherDev)
	impostor := NewProver(f.image.Clone(), otherPort, f.prover.FreqHz)
	ch := fixedChallenge(1, 0x3000)
	resp, compute, err := impostor.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	res := f.verifier.Verify(ch, resp, compute)
	if res.Accepted {
		t.Fatal("impersonating device accepted")
	}
}

func TestTimeBoundEnforced(t *testing.T) {
	f := newFixture(t, 4)
	ch := fixedChallenge(1, 0x4000)
	resp, _, err := f.prover.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	res := f.verifier.Verify(ch, resp, f.verifier.Delta()+0.001)
	if res.Accepted {
		t.Fatal("late response accepted")
	}
	if !strings.Contains(res.Reason, "time bound") {
		t.Errorf("unexpected reason: %s", res.Reason)
	}
}

func TestSessionMismatchRejected(t *testing.T) {
	f := newFixture(t, 5)
	ch := fixedChallenge(1, 0x5000)
	resp, compute, _ := f.prover.Respond(ch)
	resp.Session = 999
	if res := f.verifier.Verify(ch, resp, compute); res.Accepted {
		t.Fatal("session mismatch accepted")
	}
}

func TestHelperCountValidated(t *testing.T) {
	f := newFixture(t, 6)
	ch := fixedChallenge(1, 0x6000)
	resp, compute, _ := f.prover.Respond(ch)
	resp.Helpers = resp.Helpers[:len(resp.Helpers)-1]
	if res := f.verifier.Verify(ch, resp, compute); res.Accepted {
		t.Fatal("truncated helper stream accepted")
	}
}

func TestHelperTamperingRejected(t *testing.T) {
	f := newFixture(t, 7)
	ch := fixedChallenge(1, 0x7000)
	resp, compute, _ := f.prover.Respond(ch)
	resp.Helpers[3] ^= 0x1
	if res := f.verifier.Verify(ch, resp, compute); res.Accepted {
		t.Fatal("tampered helper data accepted")
	}
}

func TestRunSession(t *testing.T) {
	f := newFixture(t, 8)
	res, err := RunSession(f.verifier, f.prover, DefaultLink())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("session rejected: %s", res.Reason)
	}
	if res.Elapsed <= 0 || res.Elapsed > res.Delta {
		t.Errorf("elapsed %v outside (0, δ=%v]", res.Elapsed, res.Delta)
	}
}

func TestDeltaComposition(t *testing.T) {
	f := newFixture(t, 9)
	v := f.verifier
	want := float64(v.ExpectedCycles)/v.BaseFreqHz*1.05 + 0.05
	if got := v.Delta(); got != want {
		t.Errorf("Delta = %v, want %v", got, want)
	}
}

func TestChallengeCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Challenge{Session: 42, Nonce: 0xdeadbeef, PUFSeed: 0x1234}
	if err := WriteChallenge(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadChallenge(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestResponseCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Response{
		Session: 7,
		Tag:     [8]uint32{1, 2, 3, 4, 5, 6, 7, 8},
		Helpers: []uint64{0x3ffffff, 0, 12345},
	}
	if err := WriteResponse(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Session != in.Session || out.Tag != in.Tag || len(out.Helpers) != 3 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	for i := range in.Helpers {
		if out.Helpers[i] != in.Helpers[i] {
			t.Fatal("helper mismatch")
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := ReadChallenge(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short challenge accepted")
	}
	// Hostile length prefix.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadResponse(&buf); err == nil {
		t.Error("giant frame accepted")
	}
	// Inconsistent helper count.
	var buf2 bytes.Buffer
	body := make([]byte, 44)
	body[40] = 200 // claims 200 helpers, no payload
	head := []byte{44, 0, 0, 0}
	buf2.Write(head)
	buf2.Write(body)
	if _, err := ReadResponse(&buf2); err == nil {
		t.Error("inconsistent helper count accepted")
	}
}

func TestEffectiveNonceMixesBothChallenges(t *testing.T) {
	a := Challenge{Nonce: 1, PUFSeed: 1}.EffectiveNonce()
	b := Challenge{Nonce: 2, PUFSeed: 1}.EffectiveNonce()
	c := Challenge{Nonce: 1, PUFSeed: 2}.EffectiveNonce()
	if a == b || a == c {
		t.Error("effective nonce insensitive to a challenge component")
	}
}

func TestLinkModel(t *testing.T) {
	l := Link{LatencySeconds: 0.01, BitsPerSecond: 1000}
	if got := l.TransferSeconds(500); got != 0.51 {
		t.Errorf("TransferSeconds = %v, want 0.51", got)
	}
	z := Link{LatencySeconds: 0.01}
	if got := z.TransferSeconds(1e6); got != 0.01 {
		t.Errorf("zero-bandwidth link should cost latency only, got %v", got)
	}
}

func TestResponseBitsAccountsHelpers(t *testing.T) {
	small := Response{}
	big := Response{Helpers: make([]uint64, 32)}
	if big.Bits()-small.Bits() != 32*HelperBitsPerWord {
		t.Errorf("helper accounting wrong: %d vs %d", big.Bits(), small.Bits())
	}
}

func TestTCPTransport(t *testing.T) {
	f := newFixture(t, 10)
	addr, closeLn, err := ListenAndServe("127.0.0.1:0", f.prover)
	if err != nil {
		t.Fatal(err)
	}
	defer closeLn()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 2; i++ {
		res, err := Request(conn, f.verifier, DefaultLink())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("TCP attestation %d rejected: %s", i, res.Reason)
		}
	}
}

func TestNewChallengeIsRandom(t *testing.T) {
	a, err := NewChallenge(1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewChallenge(2)
	if a.Nonce == b.Nonce && a.PUFSeed == b.PUFSeed {
		t.Error("two fresh challenges identical; RNG broken?")
	}
}

func TestProverSetFreq(t *testing.T) {
	f := newFixture(t, 11)
	f.prover.SetFreq(123e6)
	if f.prover.FreqHz != 123e6 {
		t.Errorf("SetFreq did not stick: %v", f.prover.FreqHz)
	}
}

func TestLinkString(t *testing.T) {
	if s := DefaultLink().String(); !strings.Contains(s, "kbit/s") {
		t.Errorf("Link.String = %q", s)
	}
}

func TestServeSurvivesProverError(t *testing.T) {
	// A prover that errors must terminate Serve with an error, not hang.
	f := newFixture(t, 12)
	f.prover.MaxCycles = 1 // guaranteed budget exhaustion
	addr, closeLn, err := ListenAndServe("127.0.0.1:0", f.prover)
	if err != nil {
		t.Fatal(err)
	}
	defer closeLn()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteChallenge(conn, fixedChallenge(1, 2)); err != nil {
		t.Fatal(err)
	}
	// The server drops the connection without a response frame.
	if _, err := ReadResponse(conn); err == nil {
		t.Error("expected read failure after prover error")
	}
}
