package attest

import (
	"context"

	"pufatt/internal/telemetry"
)

// Cross-layer trace stitching: a caller that opened its own span around an
// attestation session (the cluster tier's route/queue/replication shell)
// passes the span's TraceContext down through the context, and the session
// span joins that trace instead of minting a fresh one — so /debug/traces
// shows one tree attributing the whole distributed round trip.

// traceParentKey is the context key for the session's trace parent.
type traceParentKey struct{}

// WithTraceParent returns a context under which attestation sessions open
// their "attest.session" span inside tc's trace, as a child of tc.Span.
// An invalid tc is carried but ignored at span-open time.
func WithTraceParent(ctx context.Context, tc telemetry.TraceContext) context.Context {
	return context.WithValue(ctx, traceParentKey{}, tc)
}

// TraceParent reports the trace parent carried by ctx, if any is set and
// valid.
func TraceParent(ctx context.Context) (telemetry.TraceContext, bool) {
	tc, ok := ctx.Value(traceParentKey{}).(telemetry.TraceContext)
	return tc, ok && tc.Valid()
}
