package attest

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pufatt/internal/core"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
)

// --- frame validation ---

// rawFrame builds a frame by hand so tests can mangle any field.
func rawFrame(magic uint16, version, ftype byte, body []byte, crc uint32) []byte {
	buf := make([]byte, headerSize+len(body))
	binary.LittleEndian.PutUint16(buf[0:], magic)
	buf[2] = version
	buf[3] = ftype
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[8:], crc)
	copy(buf[headerSize:], body)
	return buf
}

func TestFrameValidation(t *testing.T) {
	body := []byte{1, 2, 3, 4}
	good := crc32.ChecksumIEEE(body)
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"bad magic", rawFrame(0x1234, frameVersion, frameChallenge, body, good), ErrBadMagic},
		{"bad version", rawFrame(frameMagic, 99, frameChallenge, body, good), ErrBadVersion},
		{"wrong type", rawFrame(frameMagic, frameVersion, frameResponse, body, good), ErrFrameType},
		{"bad crc", rawFrame(frameMagic, frameVersion, frameChallenge, body, good^1), ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := readFrame(bytes.NewReader(tc.frame), frameChallenge)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if !IsTransport(err) {
				t.Errorf("%v not classified as transport", err)
			}
		})
	}
	t.Run("hostile length", func(t *testing.T) {
		frame := rawFrame(frameMagic, frameVersion, frameChallenge, nil, 0)
		binary.LittleEndian.PutUint32(frame[4:], maxFrame+1)
		if _, err := readFrame(bytes.NewReader(frame), frameChallenge); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		frame := rawFrame(frameMagic, frameVersion, frameChallenge, body, good)
		if _, err := readFrame(bytes.NewReader(frame[:len(frame)-2]), frameChallenge); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
		}
	})
}

// --- time trailer validation (the adversary-influenced field) ---

func TestTimeTrailerRejectsHostileValues(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1e-9} {
		// An adversarial prover can put any bit pattern on the wire:
		// bypass writeTime's own validation and craft the frame directly.
		var body [8]byte
		binary.LittleEndian.PutUint64(body[:], math.Float64bits(bad))
		var buf bytes.Buffer
		if err := writeFrame(&buf, frameTime, body[:]); err != nil {
			t.Fatal(err)
		}
		if _, err := readTime(&buf); !errors.Is(err, ErrBadTime) {
			t.Errorf("readTime(%v) err = %v, want ErrBadTime", bad, err)
		}
		// The honest encoder must refuse the same values outright.
		if err := writeTime(io.Discard, bad); !errors.Is(err, ErrBadTime) {
			t.Errorf("writeTime(%v) err = %v, want ErrBadTime", bad, err)
		}
	}
	var buf bytes.Buffer
	if err := writeTime(&buf, 0.125); err != nil {
		t.Fatal(err)
	}
	got, err := readTime(&buf)
	if err != nil || got != 0.125 {
		t.Fatalf("round trip = %v, %v", got, err)
	}
}

// nanTimeAgent forwards to the prover but reports a hostile NaN compute
// time, modelling a prover that tries to blind the timing decision.
type nanTimeAgent struct{ inner ProverAgent }

func (a nanTimeAgent) Respond(ch Challenge) (Response, float64, error) {
	resp, _, err := a.inner.Respond(ch)
	return resp, math.NaN(), err
}

func TestNaNTimeCannotBypassTimingDecision(t *testing.T) {
	// End to end over a pipe: a prover shipping NaN time must not be
	// accepted (NaN compares false with every bound, so without decode
	// validation `elapsed > δ` would never fire).
	f := newFixture(t, 20)
	client, server := net.Pipe()
	defer client.Close()
	go func() {
		defer server.Close()
		ch, err := ReadChallenge(server)
		if err != nil {
			return
		}
		resp, _, err := nanTimeAgent{f.prover}.Respond(ch)
		if err != nil {
			return
		}
		_ = WriteResponse(server, resp)
		// writeTime refuses NaN, so forge the trailer frame directly.
		var body [8]byte
		binary.LittleEndian.PutUint64(body[:], math.Float64bits(math.NaN()))
		_ = writeFrame(server, frameTime, body[:])
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := RequestContext(ctx, client, f.verifier, DefaultLink())
	if err == nil {
		t.Fatalf("NaN-time session completed: accepted=%v", res.Accepted)
	}
	if !errors.Is(err, ErrBadTime) {
		t.Fatalf("err = %v, want ErrBadTime", err)
	}
}

// --- retry policy ---

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond, Multiplier: 2, JitterSeed: 7}
	q := p // identical policy must produce the identical schedule
	prev := time.Duration(0)
	for n := 1; n <= 6; n++ {
		d := p.Backoff(n)
		if d != q.Backoff(n) {
			t.Fatalf("backoff(%d) not deterministic", n)
		}
		base := float64(10*time.Millisecond) * math.Pow(2, float64(n-1))
		if base > float64(200*time.Millisecond) {
			base = float64(200 * time.Millisecond)
		}
		if float64(d) < base || float64(d) > base*1.5 {
			t.Errorf("backoff(%d) = %v outside [%v, %v]", n, d, time.Duration(base), time.Duration(base*1.5))
		}
		if n <= 4 && d <= prev {
			t.Errorf("backoff(%d) = %v not growing (prev %v)", n, d, prev)
		}
		prev = d
	}
	if got := (RetryPolicy{JitterSeed: 1}).Backoff(3); got != 0 {
		t.Errorf("zero BaseDelay should not sleep, got %v", got)
	}
	if got := (RetryPolicy{BaseDelay: time.Second, JitterSeed: 9}).Backoff(0); got != 0 {
		t.Errorf("attempt 0 has no backoff, got %v", got)
	}
}

func TestRetryDoSemantics(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Multiplier: 2, JitterSeed: 3,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}

	t.Run("transport retried to budget", func(t *testing.T) {
		slept = nil
		calls := 0
		attempts, err := p.Do(func(int) error { calls++; return Transport(ErrLinkDrop) })
		if attempts != 3 || calls != 3 {
			t.Fatalf("attempts = %d, calls = %d, want 3", attempts, calls)
		}
		if !errors.Is(err, ErrLinkDrop) || !IsTransport(err) {
			t.Fatalf("terminal err = %v", err)
		}
		if len(slept) != 2 {
			t.Fatalf("slept %d times, want 2", len(slept))
		}
	})
	t.Run("non-transport not retried", func(t *testing.T) {
		calls := 0
		deviceErr := errors.New("mcu: budget exhausted")
		attempts, err := p.Do(func(int) error { calls++; return deviceErr })
		if attempts != 1 || calls != 1 {
			t.Fatalf("attempts = %d, calls = %d, want 1", attempts, calls)
		}
		if !errors.Is(err, deviceErr) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("success stops", func(t *testing.T) {
		calls := 0
		attempts, err := p.Do(func(int) error {
			calls++
			if calls < 2 {
				return Transport(ErrLinkTimeout)
			}
			return nil
		})
		if attempts != 2 || err != nil {
			t.Fatalf("attempts = %d, err = %v", attempts, err)
		}
	})
}

func TestIsTransportClassification(t *testing.T) {
	transport := []error{
		ErrBadMagic, ErrBadVersion, ErrFrameType, ErrChecksum,
		ErrFrameTooLarge, ErrBadTime, ErrLinkDrop, ErrLinkTimeout,
		ErrStaleFrame, io.EOF, io.ErrUnexpectedEOF, io.ErrClosedPipe,
		net.ErrClosed, context.DeadlineExceeded,
		Transport(errors.New("custom channel fault")),
		fmt.Errorf("wrapped: %w", ErrChecksum),
	}
	for _, err := range transport {
		if !IsTransport(err) {
			t.Errorf("IsTransport(%v) = false, want true", err)
		}
	}
	notTransport := []error{
		nil,
		errors.New("mcu: illegal instruction"),
		context.Canceled, // a user abort must not burn retry budget
	}
	for _, err := range notTransport {
		if IsTransport(err) {
			t.Errorf("IsTransport(%v) = true, want false", err)
		}
	}
}

// --- deterministic fault injection ---

func TestFaultScheduleDeterministic(t *testing.T) {
	plan := FaultPlan{Drop: 0.3, Corrupt: 0.2, Duplicate: 0.1}
	run := func() []int {
		var sink bytes.Buffer
		fc := NewFaultyConn(&sink, plan, 1234)
		for i := 0; i < 200; i++ {
			if _, err := fc.Write([]byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
				t.Fatal(err)
			}
		}
		counts := fc.Counts()
		return []int{counts[FaultDrop], counts[FaultCorrupt], counts[FaultDuplicate]}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge: %v vs %v", a, b)
		}
	}
	if a[0] == 0 || a[1] == 0 || a[2] == 0 {
		t.Fatalf("expected every configured class to fire over 200 frames: %v", a)
	}
}

func TestFaultBudgetStopsInjection(t *testing.T) {
	var sink bytes.Buffer
	fc := NewFaultyConn(&sink, FaultPlan{Drop: 1, MaxFaults: 2}, 9)
	for i := 0; i < 5; i++ {
		_, _ = fc.Write([]byte{0xAA})
	}
	if fc.Injected() != 2 {
		t.Fatalf("injected = %d, want 2", fc.Injected())
	}
	if sink.Len() != 3 { // 5 writes, first 2 dropped
		t.Fatalf("sink has %d bytes, want 3", sink.Len())
	}
}

// TestFaultyLinkClassification checks that every injectable fault class
// surfaces as a *transport* error of the documented kind — never as a
// verdict — and that one retry recovers from a single transient fault.
func TestFaultyLinkClassification(t *testing.T) {
	f := newFixture(t, 21)
	cases := []struct {
		class FaultClass
		want  error
	}{
		{FaultDrop, ErrLinkDrop},
		{FaultCorrupt, ErrChecksum},
		{FaultTruncate, io.ErrUnexpectedEOF},
		{FaultDelay, ErrLinkTimeout},
		{FaultDuplicate, ErrStaleFrame},
	}
	for _, tc := range cases {
		t.Run(tc.class.String(), func(t *testing.T) {
			link := NewFaultyLink(f.prover, PlanFor(tc.class, 0.25, 1), 77)
			// One-shot: the fault must surface as the documented
			// transport error.
			_, err := RunSession(f.verifier, link, DefaultLink())
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if !IsTransport(err) {
				t.Fatalf("%v not classified as transport", err)
			}
			// The budget is spent (MaxFaults 1): a retry must recover.
			link2 := NewFaultyLink(f.prover, PlanFor(tc.class, 0.25, 1), 78)
			res, attempts, err := RunSessionRetry(f.verifier, link2, DefaultLink(), RetryPolicy{MaxAttempts: 3})
			if err != nil {
				t.Fatalf("retry did not recover: %v", err)
			}
			if !res.Accepted {
				t.Fatalf("recovered session rejected: %s", res.Reason)
			}
			if attempts != 2 {
				t.Errorf("attempts = %d, want 2 (one fault, one recovery)", attempts)
			}
		})
	}
}

// TestRejectionNeverRetried is the security property at the heart of the
// retry design: a completed-and-rejected session is final. Retrying it
// would hand a forger fresh chances to get lucky.
func TestRejectionNeverRetried(t *testing.T) {
	f := newFixture(t, 22)
	for i := 0; i < 50; i++ {
		f.prover.Image.Mem[f.image.Layout.PayloadAddr+i] ^= 0x1
	}
	res, attempts, err := RunSessionRetry(f.verifier, f.prover, DefaultLink(), RetryPolicy{MaxAttempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("tampered prover accepted")
	}
	if attempts != 1 {
		t.Fatalf("rejected verdict was retried: %d attempts", attempts)
	}
}

// --- TCP robustness under injected faults ---

// errCollector gathers server-side faults.
type errCollector struct {
	mu   sync.Mutex
	errs []error
}

func (c *errCollector) add(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errs = append(c.errs, err)
}

func (c *errCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.errs)
}

// startServer runs a Server for the fixture's prover and tears it down with
// the test.
func startServer(t *testing.T, agent ProverAgent, timeout time.Duration) (net.Addr, *errCollector, *Server) {
	t.Helper()
	ec := &errCollector{}
	srv := &Server{Agent: agent, Timeout: timeout, OnError: ec.add}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr, ec, srv
}

// TestTCPFaultRecovery drives a full cross-process attestation through
// each injected fault class and checks the retry loop recovers onto a
// clean connection.
func TestTCPFaultRecovery(t *testing.T) {
	f := newFixture(t, 23)
	addr, _, _ := startServer(t, f.prover, 2*time.Second)
	cases := []struct {
		class       FaultClass
		wantRetries bool // duplicate within one session is benign
	}{
		{FaultDrop, true},
		{FaultCorrupt, true},
		{FaultTruncate, true},
		{FaultDelay, true},
		{FaultDuplicate, false},
	}
	for _, tc := range cases {
		t.Run(tc.class.String(), func(t *testing.T) {
			// The injected delay must exceed the attempt deadline, so a
			// delayed frame reads as a timed-out attempt.
			inj := NewFaultInjector(PlanFor(tc.class, 0.6, 1), 99)
			dial := func() (net.Conn, error) {
				c, err := net.Dial("tcp", addr.String())
				if err != nil {
					return nil, err
				}
				return inj.Wrap(c), nil
			}
			policy := RetryPolicy{MaxAttempts: 4, AttemptTimeout: 300 * time.Millisecond}
			res, attempts, err := RequestWithRetry(context.Background(), dial, f.verifier, DefaultLink(), policy)
			if err != nil {
				t.Fatalf("no recovery from %v: %v", tc.class, err)
			}
			if !res.Accepted {
				t.Fatalf("recovered session rejected: %s", res.Reason)
			}
			if inj.Injected() != 1 {
				t.Fatalf("injected = %d, want exactly 1", inj.Injected())
			}
			if tc.wantRetries && attempts < 2 {
				t.Errorf("fault %v consumed no retry (attempts=%d)", tc.class, attempts)
			}
			if !tc.wantRetries && attempts != 1 {
				t.Errorf("benign duplicate should not retry (attempts=%d)", attempts)
			}
		})
	}
}

// TestTCPJitterInflatesRTT: over the real transport the timing decision is
// modelled, not wall-clock, so a jitter fault's sleep alone cannot trip the
// time bound — the injected latency must be folded into the modelled
// elapsed. A jitter above δ yields a completed-but-rejected session (a
// verdict, so no retry is consumed); a jitter far below δ stays accepted.
func TestTCPJitterInflatesRTT(t *testing.T) {
	f := newFixture(t, 26)
	addr, _, _ := startServer(t, f.prover, 2*time.Second)
	run := func(t *testing.T, jitterSecs float64) (Result, int) {
		t.Helper()
		inj := NewFaultInjector(FaultPlan{Jitter: 1, JitterSeconds: jitterSecs, MaxFaults: 1}, 42)
		dial := func() (net.Conn, error) {
			c, err := net.Dial("tcp", addr.String())
			if err != nil {
				return nil, err
			}
			return inj.Wrap(c), nil
		}
		policy := RetryPolicy{MaxAttempts: 4, AttemptTimeout: 2 * time.Second}
		res, attempts, err := RequestWithRetry(context.Background(), dial, f.verifier, DefaultLink(), policy)
		if err != nil {
			t.Fatalf("jittered session errored: %v", err)
		}
		if inj.Injected() != 1 {
			t.Fatalf("injected = %d, want exactly 1", inj.Injected())
		}
		return res, attempts
	}
	t.Run("above-delta-rejected", func(t *testing.T) {
		res, attempts := run(t, 2*f.verifier.Delta())
		if res.Accepted {
			t.Fatalf("jitter of 2δ accepted (elapsed %.4gs, δ %.4gs)", res.Elapsed, res.Delta)
		}
		if !strings.Contains(res.Reason, "time bound") {
			t.Fatalf("reason = %q, want time bound", res.Reason)
		}
		if attempts != 1 {
			t.Fatalf("rejected verdict consumed retries (attempts=%d)", attempts)
		}
	})
	t.Run("below-delta-accepted", func(t *testing.T) {
		res, _ := run(t, f.verifier.Delta()/100)
		if !res.Accepted {
			t.Fatalf("tiny jitter rejected: %s", res.Reason)
		}
	})
}

// TestTCPDuplicateDesyncClassified shows the harmful face of duplication:
// the stale copy desyncs the *next* session on the same stream, and that
// desync is classified as a transport fault (ErrStaleFrame) — not passed
// to the verifier as a failed verdict.
func TestTCPDuplicateDesyncClassified(t *testing.T) {
	f := newFixture(t, 24)
	addr, _, _ := startServer(t, f.prover, 2*time.Second)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fc := NewFaultyConn(conn, PlanFor(FaultDuplicate, 0, 1), 5)
	res, err := Request(fc, f.verifier, DefaultLink())
	if err != nil || !res.Accepted {
		t.Fatalf("duplicated session should still complete: %v %+v", err, res)
	}
	// The duplicated challenge produced a second response that is still
	// in the stream; the next session must detect it as stale transport
	// state, not as a prover rejection.
	_, err = Request(fc, f.verifier, DefaultLink())
	if !errors.Is(err, ErrStaleFrame) {
		t.Fatalf("err = %v, want ErrStaleFrame", err)
	}
	if !IsTransport(err) {
		t.Fatal("stale frame not classified as transport")
	}
	// A redial recovers.
	fresh, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if res, err := Request(fresh, f.verifier, DefaultLink()); err != nil || !res.Accepted {
		t.Fatalf("fresh connection should recover: %v %+v", err, res)
	}
}

// TestTCPRejectedVerdictNotRetried: the no-amplification property over the
// real transport — dials are counted, so a retry would be visible.
func TestTCPRejectedVerdictNotRetried(t *testing.T) {
	f := newFixture(t, 25)
	for i := 0; i < 50; i++ {
		f.prover.Image.Mem[f.image.Layout.PayloadAddr+i] ^= 0x1
	}
	addr, _, _ := startServer(t, f.prover, 2*time.Second)
	dials := 0
	dial := func() (net.Conn, error) {
		dials++
		return net.Dial("tcp", addr.String())
	}
	policy := RetryPolicy{MaxAttempts: 5, AttemptTimeout: 2 * time.Second}
	res, attempts, err := RequestWithRetry(context.Background(), dial, f.verifier, DefaultLink(), policy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("tampered prover accepted over TCP")
	}
	if attempts != 1 || dials != 1 {
		t.Fatalf("rejection retried: attempts=%d dials=%d, want 1/1", attempts, dials)
	}
}

// --- server lifecycle ---

func TestServerSurfacesProtocolErrors(t *testing.T) {
	f := newFixture(t, 26)
	addr, ec, _ := startServer(t, f.prover, time.Second)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	// Garbage that fails the magic check.
	garbage := bytes.Repeat([]byte{0xFF}, headerSize)
	if _, err := conn.Write(garbage); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for ec.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ec.count() == 0 {
		t.Fatal("server swallowed the protocol error")
	}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if !errors.Is(ec.errs[0], ErrBadMagic) {
		t.Errorf("surfaced err = %v, want ErrBadMagic", ec.errs[0])
	}
}

func TestServerCloseIsDeterministic(t *testing.T) {
	f := newFixture(t, 27)
	ec := &errCollector{}
	srv := &Server{Agent: f.prover, Timeout: time.Minute, OnError: ec.add}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// An in-flight connection parked mid-exchange must not block Close.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if res, err := Request(conn, f.verifier, DefaultLink()); err != nil || !res.Accepted {
		t.Fatalf("warmup session failed: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Close did not drain in-flight connections")
	}
	if _, err := net.DialTimeout("tcp", addr.String(), 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after Close")
	}
	if ec.count() != 0 {
		ec.mu.Lock()
		defer ec.mu.Unlock()
		t.Errorf("shutdown reported spurious errors: %v", ec.errs)
	}
	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestServeContextCancel(t *testing.T) {
	f := newFixture(t, 28)
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeContext(ctx, server, f.prover) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ServeContext ignored cancellation")
	}
}

func TestRequestContextDeadline(t *testing.T) {
	f := newFixture(t, 29)
	// A black-hole server: accepts and never answers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = RequestContext(ctx, conn, f.verifier, DefaultLink())
	if err == nil {
		t.Fatal("request against black hole succeeded")
	}
	if !IsTransport(err) {
		t.Fatalf("deadline expiry not transport-classified: %v", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("deadline ignored: waited %v", waited)
	}
}

// --- resilient fleet sweep ---

// fleetSpec builds a fleet with a controlled mixture of node conditions.
type fleetSpec struct {
	transientFaulty  map[int]bool // lossy link, recovers within the retry budget
	persistentFaulty map[int]bool // dead link, never recovers
	tampered         map[int]bool // firmware modified: must be REJECTED, not unreachable
}

func buildResilientFleet(t *testing.T, nodes int, spec fleetSpec) *Fleet {
	t.Helper()
	design := core.MustNewDesign(core.DefaultConfig())
	params := swatt.Params{MemWords: 1024, Chunks: 4, BlocksPerChunk: 2, PRG: swatt.PRGMix32}
	image, err := swatt.BuildImage(params, []uint32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet()
	link := DefaultLink()
	for id := 0; id < nodes; id++ {
		dev := core.MustNewDevice(design, rng.New(900), id)
		port := mcu.MustNewDevicePort(dev)
		prover := NewProver(image.Clone(), port, 1)
		prover.TuneClock(0.98)
		v, err := NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
		if err != nil {
			t.Fatal(err)
		}
		v.AllowNetwork(link)
		if spec.tampered[id] {
			for i := 0; i < 400; i++ {
				prover.Image.Mem[image.Layout.PayloadAddr+i] ^= 0xAA
			}
		}
		var agent ProverAgent = prover
		switch {
		case spec.transientFaulty[id]:
			// Two faults, budget of three attempts: the third wins.
			agent = NewFaultyLink(prover, FaultPlan{Drop: 1, MaxFaults: 2}, uint64(1000+id))
		case spec.persistentFaulty[id]:
			agent = NewFaultyLink(prover, FaultPlan{Drop: 1}, uint64(2000+id))
		}
		if err := fleet.Enroll(id, v, agent); err != nil {
			t.Fatal(err)
		}
	}
	return fleet
}

func idSet(ids ...int) map[int]bool {
	m := make(map[int]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func sameIDs(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestFleetResilientSweep50 is the acceptance scenario: ≥50 nodes, 20%
// faulty links (half transient, half dead), plus two genuinely compromised
// nodes; the sweep runs with bounded concurrency, recovers the transient
// nodes within their retry budgets, reports compromised and unreachable
// separately, and quarantines the repeat offenders.
func TestFleetResilientSweep50(t *testing.T) {
	const nodes = 50
	transient := []int{3, 11, 19, 27, 35}
	persistent := []int{7, 15, 23, 31, 47}
	tampered := []int{12, 40}
	fleet := buildResilientFleet(t, nodes, fleetSpec{
		transientFaulty:  idSet(transient...),
		persistentFaulty: idSet(persistent...),
		tampered:         idSet(tampered...),
	})
	link := DefaultLink()
	opts := SweepOptions{Concurrency: 8, Retry: RetryPolicy{MaxAttempts: 3}, ProbeQuarantined: true}

	report := fleet.SweepWithOptions(context.Background(), link, opts)
	if len(report.Results) != nodes {
		t.Fatalf("%d results, want %d", len(report.Results), nodes)
	}
	for i, r := range report.Results {
		if r.NodeID != i {
			t.Fatalf("result %d has node id %d (order lost under concurrency)", i, r.NodeID)
		}
	}
	if !sameIDs(report.Compromised, tampered) {
		t.Errorf("compromised = %v, want %v", report.Compromised, tampered)
	}
	if !sameIDs(report.Unreachable, persistent) {
		t.Errorf("unreachable = %v, want %v", report.Unreachable, persistent)
	}
	if len(report.Healthy) != nodes-len(persistent)-len(tampered) {
		t.Errorf("healthy = %d, want %d", len(report.Healthy), nodes-len(persistent)-len(tampered))
	}
	for _, id := range transient {
		r := report.Results[id]
		if !r.Healthy() {
			t.Errorf("transient node %d did not recover: %v", id, r.Err)
		}
		if r.Attempts != 3 {
			t.Errorf("transient node %d used %d attempts, want 3", id, r.Attempts)
		}
	}
	// The compromised/unreachable split must be disjoint and complete.
	if bad := Compromised(report.Results); !sameIDs(bad, tampered) {
		t.Errorf("Compromised() = %v, want %v", bad, tampered)
	}
	if un := Unreachable(report.Results); !sameIDs(un, persistent) {
		t.Errorf("Unreachable() = %v, want %v", un, persistent)
	}

	// Repeat offenders trip the breaker after QuarantineThreshold sweeps.
	fleet.SweepWithOptions(context.Background(), link, opts)
	report3 := fleet.SweepWithOptions(context.Background(), link, opts)
	if !sameIDs(fleet.Quarantined(), persistent) {
		t.Fatalf("quarantined = %v, want %v", fleet.Quarantined(), persistent)
	}
	if !sameIDs(report3.Unreachable, persistent) {
		t.Errorf("sweep 3 unreachable = %v, want %v", report3.Unreachable, persistent)
	}

	// Sweep 4: quarantined nodes get a single half-open probe each — which
	// fails against a dead link — so they are reported as quarantined and
	// consume no retry budget.
	report4 := fleet.SweepWithOptions(context.Background(), link, opts)
	if !sameIDs(report4.Quarantined, persistent) {
		t.Errorf("sweep 4 quarantined = %v, want %v", report4.Quarantined, persistent)
	}
	for _, id := range persistent {
		r := report4.Results[id]
		if !errors.Is(r.Err, ErrQuarantined) {
			t.Errorf("node %d err = %v, want ErrQuarantined", id, r.Err)
		}
		if r.Attempts != 0 {
			t.Errorf("quarantined node %d burned %d attempts", id, r.Attempts)
		}
	}
	// Tampered nodes must still be flagged every sweep — rejection is a
	// verdict, not a reachability problem, so they never enter quarantine.
	if !sameIDs(report4.Compromised, tampered) {
		t.Errorf("sweep 4 compromised = %v, want %v", report4.Compromised, tampered)
	}

	// An operator reinstates a node; it is attested (and found
	// unreachable) again instead of being skipped.
	fleet.Reinstate(persistent[0])
	report5 := fleet.SweepWithOptions(context.Background(), link, opts)
	r := report5.Results[persistent[0]]
	if r.Attempts != 3 || !r.Unreachable() {
		t.Errorf("reinstated node: attempts=%d unreachable=%v, want 3/true", r.Attempts, r.Unreachable())
	}
}

// TestFleetQuarantineRecovery: a node whose link heals leaves quarantine
// through a successful half-open probe.
func TestFleetQuarantineRecovery(t *testing.T) {
	fleet := buildResilientFleet(t, 2, fleetSpec{})
	// Replace node 1's agent with a link that is dead for exactly the
	// faults consumed by three 1-attempt sweeps, then heals.
	design := core.MustNewDesign(core.DefaultConfig())
	params := swatt.Params{MemWords: 1024, Chunks: 4, BlocksPerChunk: 2, PRG: swatt.PRGMix32}
	image, err := swatt.BuildImage(params, []uint32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	dev := core.MustNewDevice(design, rng.New(901), 5)
	port := mcu.MustNewDevicePort(dev)
	prover := NewProver(image.Clone(), port, 1)
	prover.TuneClock(0.98)
	v, err := NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
	if err != nil {
		t.Fatal(err)
	}
	healing := NewFaultyLink(prover, FaultPlan{Drop: 1, MaxFaults: 3}, 55)
	if err := fleet.Enroll(5, v, healing); err != nil {
		t.Fatal(err)
	}
	link := DefaultLink()
	opts := SweepOptions{Concurrency: 2, Retry: RetryPolicy{MaxAttempts: 1}, ProbeQuarantined: true}
	for i := 0; i < 3; i++ {
		fleet.SweepWithOptions(context.Background(), link, opts)
	}
	if !sameIDs(fleet.Quarantined(), []int{5}) {
		t.Fatalf("quarantined = %v, want [5]", fleet.Quarantined())
	}
	// The link has healed (3 faults consumed); the next sweep's probe
	// succeeds and lifts the quarantine.
	report := fleet.SweepWithOptions(context.Background(), link, opts)
	if !report.Results[2].Healthy() { // index 2 = node id 5 (after 0, 1)
		t.Fatalf("healed node probe failed: %+v", report.Results[2])
	}
	if len(fleet.Quarantined()) != 0 {
		t.Fatalf("quarantine not lifted: %v", fleet.Quarantined())
	}
	if !sameIDs(report.Healthy, []int{0, 1, 5}) {
		t.Errorf("healthy = %v, want [0 1 5]", report.Healthy)
	}
}

// TestSweepProbeDisabled: with probing off, quarantined nodes are skipped
// outright.
func TestSweepProbeDisabled(t *testing.T) {
	fleet := buildResilientFleet(t, 3, fleetSpec{persistentFaulty: idSet(1)})
	link := DefaultLink()
	opts := SweepOptions{Concurrency: 2, Retry: RetryPolicy{MaxAttempts: 1}, ProbeQuarantined: false}
	for i := 0; i < 3; i++ {
		fleet.SweepWithOptions(context.Background(), link, opts)
	}
	report := fleet.SweepWithOptions(context.Background(), link, opts)
	if !sameIDs(report.Quarantined, []int{1}) {
		t.Fatalf("quarantined = %v, want [1]", report.Quarantined)
	}
	r := report.Results[1]
	if r.Attempts != 0 || !errors.Is(r.Err, ErrQuarantined) {
		t.Errorf("skipped node: attempts=%d err=%v", r.Attempts, r.Err)
	}
}

func TestSweepReportString(t *testing.T) {
	fleet := buildResilientFleet(t, 2, fleetSpec{})
	report := fleet.SweepWithOptions(context.Background(), DefaultLink(), DefaultSweepOptions())
	s := report.String()
	if s == "" || len(report.Healthy) != 2 {
		t.Fatalf("report = %q healthy=%v", s, report.Healthy)
	}
}
