package slender

import (
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/rng"
)

func fixture(t *testing.T) (*core.Design, *core.Device) {
	t.Helper()
	cfg := core.DefaultConfig()
	d := core.MustNewDesign(cfg)
	return d, core.MustNewDevice(d, rng.New(80), 0)
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{StreamBits: 0, SubstringBits: 1, Threshold: 0.8},
		{StreamBits: 64, SubstringBits: 128, Threshold: 0.8},
		{StreamBits: 256, SubstringBits: 64, Threshold: 0.4},
		{StreamBits: 256, SubstringBits: 64, Threshold: 1.1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
}

func TestGenuineDeviceAuthenticates(t *testing.T) {
	_, dev := fixture(t)
	p := DefaultParams()
	pr, err := NewProver(dev, p)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(dev.Emulator(), p)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(81)
	accepted := 0
	const rounds = 20
	for i := 0; i < rounds; i++ {
		out, err := Authenticate(pr, v, src)
		if err != nil {
			t.Fatal(err)
		}
		if out.Accepted {
			accepted++
		}
		if out.BestFrac < 0.86 {
			t.Errorf("round %d: best alignment only %.3f", i, out.BestFrac)
		}
	}
	if accepted < rounds-1 {
		t.Errorf("genuine device accepted only %d/%d rounds", accepted, rounds)
	}
}

func TestImpostorChipRejected(t *testing.T) {
	d, dev := fixture(t)
	impostor := core.MustNewDevice(d, rng.New(80), 7)
	p := DefaultParams()
	pr, _ := NewProver(impostor, p)
	v, _ := NewVerifier(dev.Emulator(), p) // enrolled for the genuine chip
	src := rng.New(82)
	accepted := 0
	const rounds = 20
	for i := 0; i < rounds; i++ {
		out, err := Authenticate(pr, v, src)
		if err != nil {
			t.Fatal(err)
		}
		if out.Accepted {
			accepted++
		}
	}
	if accepted > 1 {
		t.Errorf("impostor accepted %d/%d rounds", accepted, rounds)
	}
}

func TestImpostorBestAlignmentBelowThreshold(t *testing.T) {
	// The statistical gap the threshold sits in: the impostor's best
	// circular alignment is a maximum over L nearly-fair-coin matches.
	d, dev := fixture(t)
	impostor := core.MustNewDevice(d, rng.New(80), 9)
	p := DefaultParams()
	pr, _ := NewProver(impostor, p)
	v, _ := NewVerifier(dev.Emulator(), p)
	src := rng.New(83)
	var worstGenuine, bestImpostor float64 = 1, 0
	genuinePr, _ := NewProver(dev, p)
	for i := 0; i < 15; i++ {
		if out, _ := Authenticate(genuinePr, v, src); out.BestFrac < worstGenuine {
			worstGenuine = out.BestFrac
		}
		if out, _ := Authenticate(pr, v, src); out.BestFrac > bestImpostor {
			bestImpostor = out.BestFrac
		}
	}
	if bestImpostor >= worstGenuine {
		t.Errorf("no separation: impostor best %.3f vs genuine worst %.3f", bestImpostor, worstGenuine)
	}
	t.Logf("genuine worst %.3f, impostor best %.3f, threshold %.2f", worstGenuine, bestImpostor, p.Threshold)
}

func TestSubstringOffsetIsSecret(t *testing.T) {
	// Two responses to the same verifier nonce should (almost surely) pick
	// different offsets — the prover's nonce changes the stream anyway.
	_, dev := fixture(t)
	pr, _ := NewProver(dev, DefaultParams())
	n1, s1 := pr.Respond(42)
	n2, s2 := pr.Respond(42)
	if n1 == n2 {
		t.Error("prover reused its nonce")
	}
	same := true
	for i := range s1 {
		if s1[i] != s2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two rounds revealed identical substrings")
	}
}

func TestBothNoncesMatter(t *testing.T) {
	if combineSeed(1, 2) == combineSeed(3, 2) {
		t.Error("verifier nonce ignored")
	}
	if combineSeed(1, 2) == combineSeed(1, 3) {
		t.Error("prover nonce ignored")
	}
}

func TestVerifyRejectsWrongLength(t *testing.T) {
	_, dev := fixture(t)
	v, _ := NewVerifier(dev.Emulator(), DefaultParams())
	if _, err := v.Verify(1, 2, make([]uint8, 10)); err == nil {
		t.Error("wrong substring length accepted")
	}
}

func TestWraparoundSubstringMatches(t *testing.T) {
	// Force offsets near the stream end by running many rounds; the
	// circular matcher must handle wraparound (covered implicitly, but
	// verify a full sweep of offsets agrees with the prover's own stream).
	_, dev := fixture(t)
	p := Params{StreamBits: 128, SubstringBits: 32, Threshold: 0.8}
	pr, _ := NewProver(dev, p)
	v, _ := NewVerifier(dev.Emulator(), p)
	src := rng.New(84)
	for i := 0; i < 30; i++ {
		out, err := Authenticate(pr, v, src)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Accepted {
			t.Fatalf("round %d rejected (best %.3f at shift %d)", i, out.BestFrac, out.BestShift)
		}
	}
}

func TestNewProverVerifierValidate(t *testing.T) {
	_, dev := fixture(t)
	bad := Params{StreamBits: 10, SubstringBits: 20, Threshold: 0.9}
	if _, err := NewProver(dev, bad); err == nil {
		t.Error("bad prover params accepted")
	}
	if _, err := NewVerifier(dev.Emulator(), bad); err == nil {
		t.Error("bad verifier params accepted")
	}
}
