// Package slender implements the Slender PUF protocol (Majzoobi, Rostami,
// Koushanfar, Wallach, Devadas — IEEE S&P Workshops 2012), the substring-
// matching authentication scheme the PUFatt paper builds its emulation-
// based verification on (reference [22]).
//
// Where PUFatt entangles the PUF with a memory checksum for attestation,
// Slender authenticates the device alone, with two elegant properties:
// no error correction (noise is absorbed by a matching threshold instead of
// helper data) and model-building resistance without an obfuscation network
// (the prover reveals only a random circular substring of its response
// stream, never disclosing which part).
//
// Protocol: both parties contribute nonces, so neither can choose the
// effective challenge alone. The prover generates a response stream from
// the combined seed, selects a secret random offset, and returns the
// substring at that offset. The verifier emulates the full stream, slides
// the substring around it (circularly), and accepts if the best match
// fraction clears the threshold.
package slender

import (
	"errors"
	"fmt"

	"pufatt/internal/core"
	"pufatt/internal/rng"
)

// Params configures the protocol.
type Params struct {
	// StreamBits is the response-stream length L.
	StreamBits int
	// SubstringBits is the revealed substring length k.
	SubstringBits int
	// Threshold is the minimum fraction of matching bits at the best
	// alignment for acceptance.
	Threshold float64
}

// DefaultParams returns the configuration used by the benches: a 256-bit
// stream, 64-bit substring, 86 % threshold. The threshold bisects the
// measured gap between an impostor chip's best circular alignment (~0.81 —
// elevated above 0.5 because same-design chips correlate through the
// layout skew) and the genuine device's worst noisy alignment (~0.92).
func DefaultParams() Params {
	return Params{StreamBits: 256, SubstringBits: 64, Threshold: 0.86}
}

// Validate checks structural requirements.
func (p Params) Validate() error {
	if p.StreamBits <= 0 || p.SubstringBits <= 0 || p.SubstringBits > p.StreamBits {
		return fmt.Errorf("slender: invalid lengths L=%d k=%d", p.StreamBits, p.SubstringBits)
	}
	if p.Threshold <= 0.5 || p.Threshold > 1 {
		return fmt.Errorf("slender: threshold %g outside (0.5, 1]", p.Threshold)
	}
	return nil
}

// combineSeed folds both nonces so neither party controls the challenge.
func combineSeed(nonceV, nonceP uint64) uint64 {
	return uint64(core.Mix32(uint32(nonceV)^core.Mix32(uint32(nonceP)))) |
		uint64(core.Mix32(uint32(nonceV>>32)+core.Mix32(uint32(nonceP>>32))))<<32
}

// stream produces the L-bit response stream for the combined seed using a
// raw-response reader (device or emulator).
func stream(read func(challenge []uint8) []uint8, design *core.Design, seed uint64, L int) []uint8 {
	out := make([]uint8, 0, L)
	for w := 0; len(out) < L; w++ {
		ch := design.ExpandChallenge(seed+uint64(w)*0x9e3779b97f4a7c15, w&7)
		out = append(out, read(ch)...)
	}
	return out[:L]
}

// Prover is the device side of the protocol.
type Prover struct {
	Dev    *core.Device
	Params Params
	// idxSrc draws the secret substring offsets.
	idxSrc *rng.Source
}

// NewProver wraps a device. The offset source is seeded from the device's
// identity for reproducible experiments; a fielded device would use a TRNG.
func NewProver(dev *core.Device, p Params) (*Prover, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Prover{
		Dev:    dev,
		Params: p,
		idxSrc: rng.New(0x51e4de5 ^ uint64(dev.ChipID())),
	}, nil
}

// Respond executes the prover's half: contribute a nonce, build the
// stream, reveal a secret-offset circular substring.
func (pr *Prover) Respond(nonceV uint64) (nonceP uint64, substring []uint8) {
	nonceP = pr.idxSrc.Uint64()
	seed := combineSeed(nonceV, nonceP)
	s := stream(pr.Dev.RawResponse, pr.Dev.Design(), seed, pr.Params.StreamBits)
	offset := pr.idxSrc.Intn(pr.Params.StreamBits)
	substring = make([]uint8, pr.Params.SubstringBits)
	for i := range substring {
		substring[i] = s[(offset+i)%pr.Params.StreamBits]
	}
	return nonceP, substring
}

// Verifier is the emulation side.
type Verifier struct {
	Em     *core.Emulator
	Params Params
}

// NewVerifier wraps an emulator.
func NewVerifier(em *core.Emulator, p Params) (*Verifier, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Verifier{Em: em, Params: p}, nil
}

// Outcome reports a verification decision and its evidence.
type Outcome struct {
	Accepted  bool
	BestFrac  float64
	BestShift int
}

// Verify slides the substring around the emulated stream and accepts on a
// threshold-clearing best alignment.
func (v *Verifier) Verify(nonceV, nonceP uint64, substring []uint8) (Outcome, error) {
	if len(substring) != v.Params.SubstringBits {
		return Outcome{}, errors.New("slender: substring length mismatch")
	}
	seed := combineSeed(nonceV, nonceP)
	s := stream(v.Em.Respond, v.Em.Design(), seed, v.Params.StreamBits)
	best, bestShift := 0, 0
	for shift := 0; shift < v.Params.StreamBits; shift++ {
		match := 0
		for i := range substring {
			if substring[i] == s[(shift+i)%v.Params.StreamBits] {
				match++
			}
		}
		if match > best {
			best, bestShift = match, shift
		}
	}
	frac := float64(best) / float64(v.Params.SubstringBits)
	return Outcome{
		Accepted:  frac >= v.Params.Threshold,
		BestFrac:  frac,
		BestShift: bestShift,
	}, nil
}

// Authenticate runs one full round between a prover and a verifier,
// drawing the verifier nonce from src.
func Authenticate(pr *Prover, v *Verifier, src *rng.Source) (Outcome, error) {
	nonceV := src.Uint64()
	nonceP, sub := pr.Respond(nonceV)
	return v.Verify(nonceV, nonceP, sub)
}
