package experiments

import (
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/rng"
	"pufatt/internal/stats"
)

func TestMeasuredPipelineFNR(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	dev := core.MustNewDevice(core.MustNewDesign(core.DefaultConfig()), rng.New(90), 0)
	pl := core.MustNewPipeline(dev)
	vp := core.MustNewVerifierPipeline(dev.Emulator())
	src := rng.New(91)
	fails := 0
	const N = 4000
	for k := 0; k < N; k++ {
		seed := src.Uint64()
		out, err := pl.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		z, err := vp.Recover(seed, out.Helpers)
		if err != nil || stats.HammingDistance(z, out.Z) != 0 {
			fails++
		}
	}
	t.Logf("measured PUF() recovery failure rate: %d/%d = %.2e", fails, N, float64(fails)/N)
	// 4000 invocations recover 32000 raw responses; at the calibrated
	// operating point the pipeline should essentially never fail.
	if fails > 2 {
		t.Errorf("PUF() recovery failed %d/%d times; reliability regression", fails, N)
	}
}
