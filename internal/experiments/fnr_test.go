package experiments

import (
	"strings"
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/rng"
	"pufatt/internal/stats"
)

func TestMeasuredPipelineFNR(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	dev := core.MustNewDevice(core.MustNewDesign(core.DefaultConfig()), rng.New(90), 0)
	pl := core.MustNewPipeline(dev)
	vp := core.MustNewVerifierPipeline(dev.Emulator())
	src := rng.New(91)
	fails := 0
	const N = 4000
	for k := 0; k < N; k++ {
		seed := src.Uint64()
		out, err := pl.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		z, err := vp.Recover(seed, out.Helpers)
		if err != nil || stats.HammingDistance(z, out.Z) != 0 {
			fails++
		}
	}
	t.Logf("measured PUF() recovery failure rate: %d/%d = %.2e", fails, N, float64(fails)/N)
	// 4000 invocations recover 32000 raw responses; at the calibrated
	// operating point the pipeline should essentially never fail.
	if fails > 2 {
		t.Errorf("PUF() recovery failed %d/%d times; reliability regression", fails, N)
	}
}

func TestFNRMonteCarloSmallRun(t *testing.T) {
	res, err := FNRMonteCarlo(core.DefaultConfig(), 400, 5, 92, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 5-vote majority at the calibrated jitter sits near 1% per bit; the
	// sketch corrects up to 7 of 32 bits, so recovery should essentially
	// never fail at this scale.
	if res.PerBitErr < 0.001 || res.PerBitErr > 0.05 {
		t.Errorf("voted per-bit error %.4f outside the calibrated band", res.PerBitErr)
	}
	if res.Failures > 1 {
		t.Errorf("sketch recovery failed %d/%d trials", res.Failures, res.Trials)
	}
	out := res.Format()
	for _, want := range []string{"FNR Monte-Carlo", "per-bit error", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
	if _, err := FNRMonteCarlo(core.DefaultConfig(), 0, 5, 92, 0); err == nil {
		t.Error("zero-trial run accepted")
	}
}
