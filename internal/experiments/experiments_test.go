package experiments

import (
	"math"
	"strings"
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/fpga"
)

func TestFigure3SmallRun(t *testing.T) {
	res, err := Figure3(core.DefaultConfig(), 2, 1500, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The calibrated regime: raw around 35.9 % of 32 bits, obfuscation
	// pushing toward 50 %.
	raw := res.RawMean()
	if math.Abs(raw-11.48) > 1.6 {
		t.Errorf("raw inter-chip mean %.2f bits, paper 11.48", raw)
	}
	if res.ObfMean() <= raw {
		t.Error("obfuscation did not increase inter-chip distance")
	}
	if res.ObfMean() < 13 || res.ObfMean() > 17 {
		t.Errorf("obfuscated mean %.2f bits outside plausible band", res.ObfMean())
	}
	out := res.Format(false)
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "paper") {
		t.Errorf("format output missing content:\n%s", out)
	}
	if !strings.Contains(res.Format(true), "#") {
		t.Error("histogram mode missing bars")
	}
}

func TestFigure3NeedsTwoChips(t *testing.T) {
	if _, err := Figure3(core.DefaultConfig(), 1, 10, 1, 0); err == nil {
		t.Error("one-chip figure 3 accepted")
	}
}

func TestFigure3MoreChipsPairwise(t *testing.T) {
	res, err := Figure3(core.DefaultConfig(), 3, 200, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3 chips → 3 pairs per challenge.
	if got := res.RawHist.Total(); got != 600 {
		t.Errorf("pairwise observations = %d, want 600", got)
	}
}

func TestFigure4SmallRun(t *testing.T) {
	res, err := Figure4(core.DefaultConfig(), 800, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Corners) != 6 {
		t.Fatalf("%d corners", len(res.Corners))
	}
	if math.Abs(res.MeanBits-3.62) > 1.3 {
		t.Errorf("grand intra mean %.2f bits, paper 3.62", res.MeanBits)
	}
	// The FNR hierarchy: claimed t=16 << voted t=7 << raw t=7.
	if !(res.FNRPaperClaim < res.FNRVotedT7 || res.FNRPaperClaim < 1e-4) {
		t.Errorf("FNR(t=16)=%g should be tiny", res.FNRPaperClaim)
	}
	if res.FNRVotedT7 >= res.FNRBoundedT7 {
		t.Errorf("majority voting did not reduce FNR: %g vs %g", res.FNRVotedT7, res.FNRBoundedT7)
	}
	if res.FNRPaperClaim > 1e-4 {
		t.Errorf("t=16 FNR = %g, should be near the paper's 1.53e-7 regime", res.FNRPaperClaim)
	}
	out := res.Format(false)
	for _, want := range []string{"Figure 4", "metastability", "Vdd 90%", "T +120C", "FNR"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4CornersStayMetastabilityDominated(t *testing.T) {
	res, err := Figure4(core.DefaultConfig(), 600, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	nominal := res.Corners[0].Hist.Mean()
	for _, c := range res.Corners[1:] {
		if c.Hist.Mean() > 2.5*nominal {
			t.Errorf("corner %s intra HD %.2f far exceeds metastability baseline %.2f — robustness claim broken",
				c.Name, c.Hist.Mean(), nominal)
		}
	}
}

func TestTable1Report(t *testing.T) {
	out, err := Table1Report(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ALU PUF", "Syndrome", "PDL", "SIRC", "4096"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 report missing %q", want)
		}
	}
	if _, err := Table1Report(20); err == nil {
		t.Error("unsupported width accepted")
	}
}

func TestFPGAMeasurementSmallRun(t *testing.T) {
	res, err := FPGAMeasurement(fpga.DefaultConfig(), 600, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.InterRaw.Mean()-3.0) > 1.3 {
		t.Errorf("FPGA inter raw %.2f bits, paper 3.0", res.InterRaw.Mean())
	}
	if res.InterObf.Mean() <= res.InterRaw.Mean() {
		t.Error("obfuscation did not raise FPGA inter-chip HD")
	}
	if math.Abs(res.Intra.Mean()-2.9) > 1.3 {
		t.Errorf("FPGA intra %.2f bits, paper 2.9", res.Intra.Mean())
	}
	out := res.Format()
	if !strings.Contains(out, "PDL calibration") {
		t.Errorf("format missing calibration info:\n%s", out)
	}
}

func TestSecuritySuite(t *testing.T) {
	cfg := DefaultSecurityConfig(7)
	cfg.MLTrain = 1200
	cfg.MLTest = 200
	cfg.OverclockTrials = 40
	res, err := RunSecuritySuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sane() {
		t.Fatalf("security outcomes wrong:\n%s", res.Format())
	}
	if res.MLRawAccuracy < 0.9 {
		t.Errorf("raw ML accuracy %.3f, expected near-total break", res.MLRawAccuracy)
	}
	if res.MLObfAccuracy > 0.9 {
		t.Errorf("obfuscated ML accuracy %.3f, obfuscation inert", res.MLObfAccuracy)
	}
	if res.MLObfFullZ > 0.1 {
		t.Errorf("full-z prediction %.3f, should be ineffective", res.MLObfFullZ)
	}
	if res.OracleAttackSeconds < 10*res.HonestComputeSeconds {
		t.Error("oracle attack not clearly slower than honest compute")
	}
	out := res.Format()
	for _, want := range []string{"honest prover", "forgery", "oracle", "ML modeling", "overclock"} {
		if !strings.Contains(out, want) {
			t.Errorf("security format missing %q", want)
		}
	}
}

func TestSecurityGames(t *testing.T) {
	report, err := SecurityGames(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !report.CorrectnessHolds() {
		t.Errorf("correctness failed:\n%s", report.Format())
	}
	if !report.SoundnessHolds() {
		t.Errorf("soundness failed:\n%s", report.Format())
	}
	if len(report.Soundness) != 4 {
		t.Errorf("%d adversary strategies, want 4", len(report.Soundness))
	}
}
