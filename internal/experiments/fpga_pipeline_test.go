package experiments

import (
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/fpga"
	"pufatt/internal/rng"
	"pufatt/internal/stats"
)

// TestFPGAPipelineReliability quantifies a gap the paper leaves implicit:
// its FPGA prototype only ever measured PUF statistics, never the full
// attestation pipeline. At the prototype's noise level (intra-chip HD
// ~18 %) the RM(1,4) sketch with 5-vote majority still fails a substantial
// share of recoveries, so the fielded design needs either the 32-bit code,
// more voting, or the ASIC noise floor. The test asserts the direction
// (FPGA >> ASIC failure rate) and logs the measured rates for
// EXPERIMENTS.md.
func TestFPGAPipelineReliability(t *testing.T) {
	cfg := fpga.DefaultConfig()
	design, err := fpga.NewDesign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	board, err := fpga.NewBoard(design, rng.New(42), 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	board.Calibrate(12, 300, rng.New(7))
	measure := func(dev *core.Device, n int) float64 {
		pl := core.MustNewPipeline(dev)
		vp := core.MustNewVerifierPipeline(dev.Emulator())
		src := rng.New(9)
		fails := 0
		for k := 0; k < n; k++ {
			seed := src.Uint64()
			out, err := pl.Query(seed)
			if err != nil {
				t.Fatal(err)
			}
			z, err := vp.Recover(seed, out.Helpers)
			if err != nil || stats.HammingDistance(z, out.Z) != 0 {
				fails++
			}
		}
		return float64(fails) / float64(n)
	}
	fpgaFail := measure(board.Device(), 400)
	asicCfg := core.DefaultConfig()
	asicCfg.Width = 16
	asicDev := core.MustNewDevice(core.MustNewDesign(asicCfg), rng.New(43), 0)
	asicFail := measure(asicDev, 400)
	t.Logf("PUF() recovery failure rate: FPGA board %.3f, 16-bit ASIC %.3f", fpgaFail, asicFail)
	if fpgaFail <= asicFail {
		t.Errorf("expected the FPGA prototype to be less reliable: %.3f vs %.3f", fpgaFail, asicFail)
	}
	if fpgaFail < 0.02 {
		t.Errorf("FPGA failure rate %.3f suspiciously low for 18%% intra-chip noise", fpgaFail)
	}
}
