package experiments

import (
	"fmt"
	"strings"

	"pufatt/internal/core"
	"pufatt/internal/ecc"
	"pufatt/internal/rng"
	"pufatt/internal/stats"
)

// FNRResult is the Monte-Carlo false-negative-rate experiment: the
// end-to-end reverse-fuzzy-extractor failure probability measured with real
// device physics (process variation, arbiter noise, temporal majority
// voting) rather than the analytic binomial model of Figure4. Each trial
// enrolls a noiseless nominal reference, measures a voted response, and
// checks that the secure sketch recovers the measurement exactly from the
// reference plus helper data.
type FNRResult struct {
	Trials   int
	Votes    int
	Failures int
	// MeasuredFNR is Failures/Trials; zero failures at small scale means
	// only an upper bound of ~1/Trials.
	MeasuredFNR float64
	// PerBitErr is the voted per-bit error rate observed during the run —
	// the p that feeds the analytic comparison.
	PerBitErr float64
	// AnalyticFNRT7 is the bounded-distance t=7 analytic FNR at the
	// measured p; PaperFNR is the paper's reported number.
	AnalyticFNRT7 float64
	PaperFNR      float64
}

// FNRMonteCarlo measures the PUF() recovery failure rate over trials
// independent challenges with votes-fold majority voting, running the PUF
// evaluations on the parallel batch engine (workers knob, 0 = GOMAXPROCS;
// results identical for every worker count).
func FNRMonteCarlo(cfg core.Config, trials, votes int, seed uint64, workers int) (*FNRResult, error) {
	if trials < 1 {
		return nil, fmt.Errorf("experiments: FNR Monte-Carlo needs >= 1 trial, have %d", trials)
	}
	design, err := core.NewDesign(cfg)
	if err != nil {
		return nil, err
	}
	dev, err := core.NewDevice(design, rng.New(seed), 0)
	if err != nil {
		return nil, err
	}
	bits := design.ResponseBits()
	code, err := ecc.ForResponseWidth(bits)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	sketch := ecc.NewSketch(code)
	res := &FNRResult{Trials: trials, Votes: votes, PaperFNR: 1.53e-7}

	chSrc := rng.New(seed).Sub("challenges/fnr")
	blk := blockSeeds
	if blk > trials {
		blk = trials
	}
	be := core.NewBatchEvaluator(dev)
	challenges := core.ChallengeMatrix(design, blk)
	refDst := be.ResponseMatrix(blk)
	measDst := be.ResponseMatrix(blk)
	errBits, totalBits := 0, 0
	for start := 0; start < trials; start += blk {
		cnt := blk
		if trials-start < cnt {
			cnt = trials - start
		}
		for k := 0; k < cnt; k++ {
			design.ExpandChallengeInto(challenges[k], chSrc.Uint64(), 0)
		}
		refs := be.NoiselessResponses(challenges[:cnt], refDst, workers)
		meas := be.MajorityResponses(challenges[:cnt], measDst, votes, workers)
		for k := 0; k < cnt; k++ {
			errBits += stats.HammingDistance(refs[k], meas[k])
			totalBits += bits
			h, err := sketch.Generate(meas[k])
			if err != nil {
				res.Failures++
				continue
			}
			rec, _, err := sketch.Recover(refs[k], h)
			if err != nil || stats.HammingDistance(rec, meas[k]) != 0 {
				res.Failures++
			}
		}
	}
	res.MeasuredFNR = float64(res.Failures) / float64(trials)
	res.PerBitErr = float64(errBits) / float64(totalBits)
	res.AnalyticFNRT7 = ecc.AnalyticFNR(bits, 7, res.PerBitErr)
	return res, nil
}

// Format renders the FNR Monte-Carlo comparison.
func (r *FNRResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FNR Monte-Carlo — %d trials, %d-vote majority\n", r.Trials, r.Votes)
	fmt.Fprintf(&b, "  measured per-bit error (voted): %.4f\n", r.PerBitErr)
	if r.Failures == 0 {
		fmt.Fprintf(&b, "  recovery failures: 0/%d (FNR < %.2g at this scale)\n", r.Trials, 1/float64(r.Trials))
	} else {
		fmt.Fprintf(&b, "  recovery failures: %d/%d = %.3g\n", r.Failures, r.Trials, r.MeasuredFNR)
	}
	fmt.Fprintf(&b, "  analytic FNR, bounded t=7 at measured p: %.3g\n", r.AnalyticFNRT7)
	fmt.Fprintf(&b, "  paper reports: %.3g\n", r.PaperFNR)
	return b.String()
}
