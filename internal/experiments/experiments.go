// Package experiments implements the paper-reproduction campaigns: every
// figure and table of PUFatt's Section 4, parameterised so that the bench
// harness (bench_test.go) and the pufatt-eval command share one
// implementation. Each experiment returns a structured result with the
// paper's reported values alongside, plus a Format method that prints the
// comparison the way EXPERIMENTS.md records it.
package experiments

import (
	"fmt"
	"strings"

	"pufatt/internal/core"
	"pufatt/internal/delay"
	"pufatt/internal/ecc"
	"pufatt/internal/obfuscate"
	"pufatt/internal/rng"
	"pufatt/internal/stats"
)

// The campaign hot loops run on the parallel batch evaluator (core.Batch-
// Evaluator): challenges are expanded into preallocated matrices in blocks,
// each block fans out across the worker pool, and per-challenge noise
// streams keep results bit-identical for every worker count. Every campaign
// takes a workers knob; 0 means GOMAXPROCS.
//
// blockSeeds bounds the challenge/response matrices held live at once, so a
// paper-scale n=10^6 campaign stays within a few MB of scratch instead of
// materialising the whole CRP set.
const blockSeeds = 512

// Fig3Result is the Figure 3 reproduction: inter-chip Hamming distance of
// raw and obfuscated 32-bit responses.
type Fig3Result struct {
	Challenges int
	Chips      int
	RawHist    *stats.Histogram
	ObfHist    *stats.Histogram
	// Paper's reported means, in bits (of 32).
	PaperRawMean float64
	PaperObfMean float64
}

// RawMean returns the measured mean inter-chip HD of raw responses (bits).
func (r *Fig3Result) RawMean() float64 { return r.RawHist.Mean() }

// ObfMean returns the measured mean inter-chip HD of obfuscated responses.
func (r *Fig3Result) ObfMean() float64 { return r.ObfHist.Mean() }

// Figure3 runs the inter-chip experiment: chips devices answer n common
// challenge seeds; Hamming distances are accumulated over all chip pairs,
// before and after obfuscation. The batch of eight expanded challenges per
// seed is evaluated on the parallel engine with the given worker count
// (0 = GOMAXPROCS); results are identical for every worker count.
func Figure3(cfg core.Config, chips, n int, seed uint64, workers int) (*Fig3Result, error) {
	if chips < 2 {
		return nil, fmt.Errorf("experiments: figure 3 needs >= 2 chips, have %d", chips)
	}
	design, err := core.NewDesign(cfg)
	if err != nil {
		return nil, err
	}
	master := rng.New(seed)
	devs := make([]*core.Device, chips)
	for i := range devs {
		devs[i], err = core.NewDevice(design, master, i)
		if err != nil {
			return nil, err
		}
	}
	bits := design.ResponseBits()
	net, err := obfuscate.New(bits)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{
		Challenges:   n,
		Chips:        chips,
		RawHist:      stats.NewHistogram(bits + 1),
		ObfHist:      stats.NewHistogram(bits + 1),
		PaperRawMean: 11.48,
		PaperObfMean: 14.28,
	}
	chSrc := rng.New(seed).Sub("challenges/fig3")
	seeds := make([]uint64, n)
	for k := range seeds {
		seeds[k] = chSrc.Uint64()
	}

	G := obfuscate.ResponsesPerOutput
	blk := blockSeeds
	if blk > n {
		blk = n
	}
	challenges := core.ChallengeMatrix(design, blk*G)
	evals := make([]*core.BatchEvaluator, chips)
	resp := make([][][]uint8, chips)
	zs := make([][][]uint8, chips)
	for c, dev := range devs {
		evals[c] = core.NewBatchEvaluator(dev)
		resp[c] = evals[c].ResponseMatrix(blk * G)
		zs[c] = make([][]uint8, blk)
	}
	group := make([][]uint8, G)
	for start := 0; start < n; start += blk {
		cnt := blk
		if n-start < cnt {
			cnt = n - start
		}
		rows := cnt * G
		for k := 0; k < cnt; k++ {
			for j := 0; j < G; j++ {
				design.ExpandChallengeInto(challenges[k*G+j], seeds[start+k], j)
			}
		}
		for c := range devs {
			out := evals[c].RawResponses(challenges[:rows], resp[c], workers)
			for k := 0; k < cnt; k++ {
				copy(group, out[k*G:(k+1)*G])
				z, err := net.Apply(group)
				if err != nil {
					return nil, err
				}
				zs[c][k] = z
			}
		}
		for k := 0; k < cnt; k++ {
			for a := 0; a < chips; a++ {
				for b := a + 1; b < chips; b++ {
					res.RawHist.Add(stats.HammingDistance(resp[a][k*G], resp[b][k*G]))
					res.ObfHist.Add(stats.HammingDistance(zs[a][k], zs[b][k]))
				}
			}
		}
	}
	return res, nil
}

// Format renders the Figure 3 comparison.
func (r *Fig3Result) Format(histograms bool) string {
	var b strings.Builder
	bits := len(r.RawHist.Counts) - 1
	fmt.Fprintf(&b, "Figure 3 — inter-chip HD, %d-bit responses, %d challenges, %d chip(s) pairwise\n",
		bits, r.Challenges, r.Chips)
	fmt.Fprintf(&b, "  raw:        mean %5.2f bits (%4.1f%%)   paper: %5.2f bits (%4.1f%%)\n",
		r.RawMean(), 100*r.RawMean()/float64(bits), r.PaperRawMean, 100*r.PaperRawMean/float64(bits))
	fmt.Fprintf(&b, "  obfuscated: mean %5.2f bits (%4.1f%%)   paper: %5.2f bits (%4.1f%%)\n",
		r.ObfMean(), 100*r.ObfMean()/float64(bits), r.PaperObfMean, 100*r.PaperObfMean/float64(bits))
	if histograms {
		fmt.Fprintf(&b, "raw HD histogram:\n%s", r.RawHist)
		fmt.Fprintf(&b, "obfuscated HD histogram:\n%s", r.ObfHist)
	}
	return b.String()
}

// Fig4Corner is one operating-condition row of Figure 4.
type Fig4Corner struct {
	Name string
	Cond delay.Conditions
	Hist *stats.Histogram
}

// Fig4Result is the Figure 4 reproduction: intra-chip HD under voltage and
// temperature variation plus arbiter metastability, and the resulting
// false-negative rate after error correction.
type Fig4Result struct {
	Challenges int
	Corners    []Fig4Corner
	// MeanBits is the grand mean intra-chip HD across corners.
	MeanBits float64
	// PerBitErr is the grand per-bit error probability.
	PerBitErr float64
	// FNR figures: analytic with the paper's claimed t=16, with the real
	// bounded-distance t=7, with t=7 after 5-vote majority, and the
	// paper's reported number.
	FNRPaperClaim float64
	FNRBoundedT7  float64
	FNRVotedT7    float64
	PaperFNR      float64
	PaperMeanBits float64
	// VotedPerBitErr is the 5-vote majority error across all corners;
	// NominalVotedErr restricts to the nominal corner, where attestation
	// runs (voting removes metastability noise but not systematic
	// corner-induced shifts).
	VotedPerBitErr  float64
	NominalVotedErr float64
	FNRNominalVoted float64
}

// Figure4 measures intra-chip HD of one device against its enrolled
// nominal reference across the paper's operating corners, evaluating each
// corner's challenge sweep on the parallel batch engine (workers knob,
// 0 = GOMAXPROCS; results identical for every worker count).
func Figure4(cfg core.Config, n int, seed uint64, workers int) (*Fig4Result, error) {
	design, err := core.NewDesign(cfg)
	if err != nil {
		return nil, err
	}
	dev, err := core.NewDevice(design, rng.New(seed), 0)
	if err != nil {
		return nil, err
	}
	bits := design.ResponseBits()
	corners := []Fig4Corner{
		{Name: "nominal (metastability)", Cond: delay.Nominal()},
		{Name: "Vdd 90%", Cond: delay.Conditions{VddScale: 0.90, TempC: 25}},
		{Name: "Vdd 110%", Cond: delay.Conditions{VddScale: 1.10, TempC: 25}},
		{Name: "T -20C", Cond: delay.Conditions{VddScale: 1.0, TempC: -20}},
		{Name: "T +120C", Cond: delay.Conditions{VddScale: 1.0, TempC: 120}},
		{Name: "Vdd 90% T +120C", Cond: delay.Conditions{VddScale: 0.90, TempC: 120}},
	}
	res := &Fig4Result{
		Challenges:    n,
		PaperFNR:      1.53e-7,
		PaperMeanBits: 3.62,
	}
	chSrc := rng.New(seed).Sub("challenges/fig4")
	seeds := make([]uint64, n)
	for k := range seeds {
		seeds[k] = chSrc.Uint64()
	}
	blk := blockSeeds
	if blk > n {
		blk = n
	}
	be := core.NewBatchEvaluator(dev)
	challenges := core.ChallengeMatrix(design, blk)
	rawDst := be.ResponseMatrix(blk)
	votedDst := be.ResponseMatrix(blk)
	refs := be.ResponseMatrix(n)
	fillBlock := func(start, cnt int) {
		for k := 0; k < cnt; k++ {
			design.ExpandChallengeInto(challenges[k], seeds[start+k], 0)
		}
	}

	// Enrollment: noiseless nominal references for every seed.
	dev.SetConditions(delay.Nominal())
	for start := 0; start < n; start += blk {
		cnt := blk
		if n-start < cnt {
			cnt = n - start
		}
		fillBlock(start, cnt)
		be.NoiselessResponses(challenges[:cnt], refs[start:start+cnt], workers)
	}

	var grand stats.Summary
	var votedErrs, votedNominal stats.Summary
	nVoted := n / 4 // voted measurement is 5× the cost; sample it
	for ci := range corners {
		dev.SetConditions(corners[ci].Cond)
		hist := stats.NewHistogram(bits + 1)
		for start := 0; start < n; start += blk {
			cnt := blk
			if n-start < cnt {
				cnt = n - start
			}
			fillBlock(start, cnt)
			raw := be.RawResponses(challenges[:cnt], rawDst, workers)
			for k := 0; k < cnt; k++ {
				hd := stats.HammingDistance(refs[start+k], raw[k])
				hist.Add(hd)
				grand.Add(float64(hd))
			}
			if vcnt := nVoted - start; vcnt > 0 {
				if vcnt > cnt {
					vcnt = cnt
				}
				voted := be.MajorityResponses(challenges[:vcnt], votedDst, 5, workers)
				for k := 0; k < vcnt; k++ {
					vhd := float64(stats.HammingDistance(refs[start+k], voted[k]))
					votedErrs.Add(vhd)
					if ci == 0 {
						votedNominal.Add(vhd)
					}
				}
			}
		}
		corners[ci].Hist = hist
	}
	dev.SetConditions(delay.Nominal())
	res.Corners = corners
	res.MeanBits = grand.Mean()
	res.PerBitErr = grand.Mean() / float64(bits)
	res.VotedPerBitErr = votedErrs.Mean() / float64(bits)
	res.NominalVotedErr = votedNominal.Mean() / float64(bits)
	res.FNRPaperClaim = ecc.AnalyticFNR(bits, 16, res.PerBitErr)
	res.FNRBoundedT7 = ecc.AnalyticFNR(bits, 7, res.PerBitErr)
	res.FNRVotedT7 = ecc.AnalyticFNR(bits, 7, res.VotedPerBitErr)
	res.FNRNominalVoted = ecc.AnalyticFNR(bits, 7, res.NominalVotedErr)
	return res, nil
}

// Format renders the Figure 4 comparison.
func (r *Fig4Result) Format(histograms bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — intra-chip HD vs nominal reference, %d challenges/corner\n", r.Challenges)
	for _, c := range r.Corners {
		bits := len(c.Hist.Counts) - 1
		fmt.Fprintf(&b, "  %-26s mean %5.2f bits (%4.1f%%)\n", c.Name, c.Hist.Mean(), 100*c.Hist.Mean()/float64(bits))
		if histograms {
			fmt.Fprintf(&b, "%s", c.Hist)
		}
	}
	fmt.Fprintf(&b, "  grand mean: %.2f bits (%.1f%%)   paper: %.2f bits (11.3%%)\n",
		r.MeanBits, 100*r.PerBitErr, r.PaperMeanBits)
	fmt.Fprintf(&b, "  FNR, paper's t=16 reading at measured p:      %.3g   (paper reports %.3g)\n", r.FNRPaperClaim, r.PaperFNR)
	fmt.Fprintf(&b, "  FNR, real (32,6,16) bounded t=7:              %.3g\n", r.FNRBoundedT7)
	fmt.Fprintf(&b, "  FNR, t=7 after 5-vote majority (p=%.4f):    %.3g\n", r.VotedPerBitErr, r.FNRVotedT7)
	fmt.Fprintf(&b, "  FNR, t=7 voted at nominal corner (p=%.4f): %.3g  <- the operating point\n", r.NominalVotedErr, r.FNRNominalVoted)
	return b.String()
}
