package experiments

import (
	"fmt"
	"strings"

	"pufatt/internal/fpga"
	"pufatt/internal/obfuscate"
	"pufatt/internal/rng"
	"pufatt/internal/stats"
)

// FPGAResult reproduces the Section 4.1 two-board measurement: PDL
// calibration followed by inter- and intra-chip HD of the 16-bit PUF.
type FPGAResult struct {
	Challenges   int
	Cal0, Cal1   fpga.CalibrationReport
	InterRaw     stats.Summary
	InterObf     stats.Summary
	Intra        stats.Summary
	PaperInter   float64 // 3.0 bits
	PaperInterOb float64 // 6.6 bits
	PaperIntra   float64 // 2.9 bits
}

// FPGAMeasurement builds two boards from the shared bitstream, calibrates
// their PDLs, and measures the paper's three statistics over n challenges.
func FPGAMeasurement(cfg fpga.Config, n int, seed uint64) (*FPGAResult, error) {
	design, err := fpga.NewDesign(cfg)
	if err != nil {
		return nil, err
	}
	master := rng.New(seed)
	b0, err := fpga.NewBoard(design, master, 0, cfg)
	if err != nil {
		return nil, err
	}
	b1, err := fpga.NewBoard(design, master, 1, cfg)
	if err != nil {
		return nil, err
	}
	cal := rng.New(seed).Sub("fpga/cal")
	res := &FPGAResult{
		Challenges:   n,
		PaperInter:   3.0,
		PaperInterOb: 6.6,
		PaperIntra:   2.9,
	}
	res.Cal0 = b0.Calibrate(12, 300, cal.Sub("b0"))
	res.Cal1 = b1.Calibrate(12, 300, cal.Sub("b1"))
	net, err := obfuscate.New(design.ResponseBits())
	if err != nil {
		return nil, err
	}
	src := rng.New(seed).Sub("fpga/challenges")
	g0 := make([][]uint8, obfuscate.ResponsesPerOutput)
	g1 := make([][]uint8, obfuscate.ResponsesPerOutput)
	for k := 0; k < n; k++ {
		s := src.Uint64()
		for j := range g0 {
			ch := design.ExpandChallenge(s, j)
			g0[j] = b0.Device().RawResponseCopy(ch)
			g1[j] = b1.Device().RawResponseCopy(ch)
		}
		res.InterRaw.Add(float64(stats.HammingDistance(g0[0], g1[0])))
		z0, err := net.Apply(g0)
		if err != nil {
			return nil, err
		}
		z1, err := net.Apply(g1)
		if err != nil {
			return nil, err
		}
		res.InterObf.Add(float64(stats.HammingDistance(z0, z1)))
		again := b0.Device().RawResponse(design.ExpandChallenge(s, 0))
		res.Intra.Add(float64(stats.HammingDistance(g0[0], again)))
	}
	return res, nil
}

// Format renders the FPGA comparison.
func (r *FPGAResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FPGA measurement (Section 4.1) — two boards, 16-bit PUF, %d challenges\n", r.Challenges)
	fmt.Fprintf(&b, "  PDL calibration residual bias: board0 mean %.3f max %.3f; board1 mean %.3f max %.3f\n",
		r.Cal0.MeanResidual, r.Cal0.MaxResidual, r.Cal1.MeanResidual, r.Cal1.MaxResidual)
	fmt.Fprintf(&b, "  inter-chip raw:        %5.2f bits (%4.1f%%)   paper: %4.1f bits (18.8%%)\n",
		r.InterRaw.Mean(), 100*r.InterRaw.Mean()/16, r.PaperInter)
	fmt.Fprintf(&b, "  inter-chip obfuscated: %5.2f bits (%4.1f%%)   paper: %4.1f bits (41.3%%)\n",
		r.InterObf.Mean(), 100*r.InterObf.Mean()/16, r.PaperInterOb)
	fmt.Fprintf(&b, "  intra-chip:            %5.2f bits (%4.1f%%)   paper: %4.1f bits (18.6%%)\n",
		r.Intra.Mean(), 100*r.Intra.Mean()/16, r.PaperIntra)
	return b.String()
}

// Table1Report reproduces the paper's Table 1 resource comparison.
func Table1Report(width int) (string, error) {
	rows, err := fpga.Table1(width)
	if err != nil {
		return "", err
	}
	return "Table 1 — FPGA implementation resources (" +
		fmt.Sprintf("%d-bit ALU PUF)\n", width) + fpga.FormatTable1(rows), nil
}
