package experiments

import (
	"pufatt/internal/attacks"
	"pufatt/internal/attest"
	"pufatt/internal/core"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/secgame"
	"pufatt/internal/swatt"
)

// SecurityGames runs the game-based correctness/soundness experiments of
// the Armknecht-framework (the paper's declared future work) with `trials`
// fresh-challenge trials per strategy. It assembles the same world as
// RunSecuritySuite — honest device plus the four adversary strategies —
// but reports repeated-trial statistics with ε upper bounds instead of
// single-shot outcomes.
func SecurityGames(seed uint64, trials int) (*secgame.Report, error) {
	dev, err := core.NewDevice(core.MustNewDesign(core.DefaultConfig()), rng.New(seed), 0)
	if err != nil {
		return nil, err
	}
	port, err := mcu.NewDevicePort(dev)
	if err != nil {
		return nil, err
	}
	p := swatt.Params{MemWords: 1024, Chunks: 4, BlocksPerChunk: 16, PRG: swatt.PRGMix32}
	payload := make([]uint32, 300)
	paySrc := rng.New(seed).Sub("payload")
	for i := range payload {
		payload[i] = paySrc.Uint32()
	}
	image, err := swatt.BuildImage(p, payload)
	if err != nil {
		return nil, err
	}
	honest := attest.NewProver(image.Clone(), port, 1)
	honest.TuneClock(0.98)
	verifier, err := attest.NewVerifier(image, dev.Emulator(), honest.FreqHz, port.Votes)
	if err != nil {
		return nil, err
	}
	extra, honestCycles, _, err := attacks.ForgeryOverheadCycles(image, port.Votes)
	if err != nil {
		return nil, err
	}
	link := attest.Link{LatencySeconds: 5e-7, BitsPerSecond: 1e9}
	verifier.ComputeSlack = 0.25 * float64(extra) / float64(honestCycles)
	verifier.NetworkAllowance = link.TransferSeconds(attest.ChallengeBits) +
		link.TransferSeconds(verifier.ExpectedResponseBits()) +
		0.25*float64(extra)/honest.FreqHz

	infected := attest.NewProver(image.Clone(), port, honest.FreqHz)
	for i := 0; i < 64; i++ {
		infected.Image.Mem[image.Layout.PayloadAddr+i] ^= 0xFF
	}
	forger, err := attacks.NewForgeryProver(image, []uint32{0xBAD}, port, honest.FreqHz)
	if err != nil {
		return nil, err
	}
	factor, err := attacks.OverclockFactorToHide(image, port.Votes, verifier.ComputeSlack)
	if err != nil {
		return nil, err
	}
	ocForger, err := attacks.NewOverclockedForgeryProver(image, []uint32{0xBAD}, port, honest.FreqHz, factor*1.05)
	if err != nil {
		return nil, err
	}
	proxy := &attacks.OracleProxyProver{
		Expected: image,
		Pipeline: core.MustNewPipeline(dev),
		Link:     attest.DefaultLink(),
	}

	exp := secgame.NewExperiment(verifier, link, trials)
	report := &secgame.Report{Correctness: exp.Run("honest prover", honest)}
	for _, s := range []struct {
		name  string
		agent attest.ProverAgent
	}{
		{"naive malware", infected},
		{"memory-copy forgery", forger},
		{"overclocked forgery", ocForger},
		{"PUF-oracle proxy", proxy},
	} {
		report.Soundness = append(report.Soundness, exp.Run(s.name, s.agent))
	}
	return report, nil
}
