package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"pufatt/internal/core"
)

// The experiment-level determinism guarantee: every figure built on the
// batch engine is identical — not just statistically, but in every
// histogram bucket — for any worker count, because noise streams derive
// from (device seed, batch epoch, item index), never from worker identity
// or scheduling order.

func workerCounts() []int {
	counts := []int{1, 4, 0} // 0 = GOMAXPROCS
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		counts = append(counts, g)
	}
	return counts
}

func TestParallelDeterminismFigure3(t *testing.T) {
	var ref *Fig3Result
	for i, w := range workerCounts() {
		res, err := Figure3(core.DefaultConfig(), 2, 400, 21, w)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("Figure3 at workers=%d differs from workers=1:\n%s\nvs\n%s",
				w, res.Format(true), ref.Format(true))
		}
	}
}

func TestParallelDeterminismFigure4(t *testing.T) {
	var ref *Fig4Result
	for i, w := range workerCounts() {
		res, err := Figure4(core.DefaultConfig(), 400, 22, w)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("Figure4 at workers=%d differs from workers=1:\n%s\nvs\n%s",
				w, res.Format(true), ref.Format(true))
		}
	}
}

func TestParallelDeterminismFNR(t *testing.T) {
	var ref *FNRResult
	for i, w := range workerCounts() {
		res, err := FNRMonteCarlo(core.DefaultConfig(), 200, 5, 23, w)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("FNR Monte-Carlo at workers=%d differs from workers=1:\n%s\nvs\n%s",
				w, res.Format(), ref.Format())
		}
	}
}
