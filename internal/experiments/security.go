package experiments

import (
	"fmt"
	"strings"

	"pufatt/internal/attacks"
	"pufatt/internal/attest"
	"pufatt/internal/core"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
)

// SecurityConfig parameterises the Section 4.2 security evaluation.
type SecurityConfig struct {
	Attest swatt.Params
	Seed   uint64
	// MLTrain/MLTest size the modeling-attack datasets.
	MLTrain, MLTest int
	// Workers bounds the batch-evaluation fan-out for the ML oracles
	// (0 = GOMAXPROCS).
	Workers int
	// OverclockFactors is the sweep grid for the PUF-corruption curve.
	OverclockFactors []float64
	OverclockTrials  int
}

// DefaultSecurityConfig returns the configuration used by pufatt-attack and
// the benches.
func DefaultSecurityConfig(seed uint64) SecurityConfig {
	return SecurityConfig{
		Attest:           swatt.Params{MemWords: 1024, Chunks: 4, BlocksPerChunk: 16, PRG: swatt.PRGMix32},
		Seed:             seed,
		MLTrain:          3000,
		MLTest:           500,
		OverclockFactors: []float64{0.8, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0},
		OverclockTrials:  100,
	}
}

// ScenarioOutcome is one adversary's protocol outcome.
type ScenarioOutcome struct {
	Name     string
	Result   attest.Result
	Detail   string
	Expected string
}

// SecurityResult is the full Section 4.2 evaluation output.
type SecurityResult struct {
	Outcomes []ScenarioOutcome
	// Forgery accounting.
	HonestCycles, ForgedCycles uint64
	OverclockFactorNeeded      float64
	// Oracle-attack accounting.
	HonestComputeSeconds float64
	OracleAttackSeconds  float64
	Delta                float64
	// ML modeling accuracies.
	MLRawAccuracy float64
	MLObfAccuracy float64
	MLObfFullZ    float64
	// Overclocking corruption curve.
	Overclock []attacks.OverclockPoint
}

// RunSecuritySuite executes the honest baseline and every adversary against
// one freshly manufactured device.
func RunSecuritySuite(cfg SecurityConfig) (*SecurityResult, error) {
	dev, err := core.NewDevice(core.MustNewDesign(core.DefaultConfig()), rng.New(cfg.Seed), 0)
	if err != nil {
		return nil, err
	}
	port, err := mcu.NewDevicePort(dev)
	if err != nil {
		return nil, err
	}
	payload := make([]uint32, 256)
	paySrc := rng.New(cfg.Seed).Sub("payload")
	for i := range payload {
		payload[i] = paySrc.Uint32()
	}
	image, err := swatt.BuildImage(cfg.Attest, payload)
	if err != nil {
		return nil, err
	}
	prover := attest.NewProver(image.Clone(), port, 1)
	prover.TuneClock(0.98)
	verifier, err := attest.NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
	if err != nil {
		return nil, err
	}
	// Local-bus timing policy derived from the measured forgery overhead
	// (see attacks package tests): honest fits, forgery cannot hide.
	extra, honest, forged, err := attacks.ForgeryOverheadCycles(image, port.Votes)
	if err != nil {
		return nil, err
	}
	link := attest.Link{LatencySeconds: 5e-7, BitsPerSecond: 1e9}
	respBits := (8+32)*8 + 8*cfg.Attest.Chunks*attest.HelperBitsPerWord + 32
	linkCost := link.TransferSeconds(attest.ChallengeBits) + link.TransferSeconds(respBits)
	verifier.ComputeSlack = 0.25 * float64(extra) / float64(honest)
	verifier.NetworkAllowance = linkCost + 0.25*float64(extra)/prover.FreqHz

	res := &SecurityResult{
		HonestCycles: honest,
		ForgedCycles: forged,
		Delta:        verifier.Delta(),
	}
	res.OverclockFactorNeeded, _ = attacks.OverclockFactorToHide(image, port.Votes, verifier.ComputeSlack)

	runOne := func(name, expected string, agent attest.ProverAgent, detail string) error {
		ch := attest.Challenge{Session: uint64(len(res.Outcomes) + 1), Nonce: 0x5eed + uint32(len(res.Outcomes)), PUFSeed: 0x9000}
		resp, compute, err := agent.Respond(ch)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
		elapsed := linkCost + compute
		res.Outcomes = append(res.Outcomes, ScenarioOutcome{
			Name:     name,
			Result:   verifier.Verify(ch, resp, elapsed),
			Detail:   detail,
			Expected: expected,
		})
		if name == "honest prover" {
			res.HonestComputeSeconds = compute
		}
		return nil
	}

	if err := runOne("honest prover", "accept", prover, "pristine memory, tuned clock"); err != nil {
		return nil, err
	}

	// Naive malware: infected memory, unmodified checksum.
	infected := attest.NewProver(image.Clone(), port, prover.FreqHz)
	for i := 0; i < 64; i++ {
		infected.Image.Mem[image.Layout.PayloadAddr+i] ^= 0xFF
	}
	if err := runOne("naive malware", "reject (response)", infected, "64 payload words flipped"); err != nil {
		return nil, err
	}

	// Memory-copy forgery at the honest clock.
	forger, err := attacks.NewForgeryProver(image, []uint32{0xBAD, 0xC0DE}, port, prover.FreqHz)
	if err != nil {
		return nil, err
	}
	if err := runOne("memory-copy forgery", "reject (time bound)", forger,
		fmt.Sprintf("redirected reads; %d extra cycles (%.1f%%)", extra, 100*float64(extra)/float64(honest))); err != nil {
		return nil, err
	}

	// Overclocked forgery.
	ocFactor := res.OverclockFactorNeeded * 1.05
	ocForger, err := attacks.NewOverclockedForgeryProver(image, []uint32{0xBAD, 0xC0DE}, port, prover.FreqHz, ocFactor)
	if err != nil {
		return nil, err
	}
	if err := runOne("overclocked forgery", "reject (response)", ocForger,
		fmt.Sprintf("clock x%.3f: fits δ but corrupts the PUF", ocFactor)); err != nil {
		return nil, err
	}
	// Restore the port clock for subsequent users of the device.
	port.SetClock(prover.FreqHz)

	// PUF-oracle proxy over the radio link.
	proxy := &attacks.OracleProxyProver{
		Expected: image,
		Pipeline: core.MustNewPipeline(dev),
		Link:     attest.DefaultLink(),
	}
	res.OracleAttackSeconds = attacks.OracleAttackTime(cfg.Attest.Chunks, attest.DefaultLink())
	if err := runOne("PUF-oracle proxy", "reject (time bound)", proxy,
		fmt.Sprintf("%d chunk round trips over %s", cfg.Attest.Chunks, attest.DefaultLink())); err != nil {
		return nil, err
	}

	// ML modeling attack (measured on a 16-bit device for speed; the
	// mechanism is width-independent).
	mlCfg := core.DefaultConfig()
	mlCfg.Width = 16
	mlDev, err := core.NewDevice(core.MustNewDesign(mlCfg), rng.New(cfg.Seed+1), 0)
	if err != nil {
		return nil, err
	}
	mlModel := attacks.TrainRawModel(mlDev, cfg.MLTrain, 25, rng.New(cfg.Seed+2), cfg.Workers)
	res.MLRawAccuracy = mlModel.AccuracyRaw(mlDev, cfg.MLTest, rng.New(cfg.Seed+3), cfg.Workers)
	oracle, err := attacks.NewObfuscatedOracle(mlDev)
	if err != nil {
		return nil, err
	}
	obfModel := attacks.TrainObfuscatedModel(oracle, cfg.MLTrain, 25, rng.New(cfg.Seed+4), cfg.Workers)
	res.MLObfAccuracy = obfModel.AccuracyObfuscated(oracle, cfg.MLTest/2, rng.New(cfg.Seed+5), cfg.Workers)
	full := 0
	fz := rng.New(cfg.Seed + 6)
	trials := cfg.MLTest / 2
	for k := 0; k < trials; k++ {
		seed := uint32(fz.Uint64())
		want := oracle.Z(seed)
		got := obfModel.PredictZ(seed)
		ok := true
		for i := range want {
			if want[i] != got[i] {
				ok = false
				break
			}
		}
		if ok {
			full++
		}
	}
	res.MLObfFullZ = float64(full) / float64(trials)

	// Overclock corruption curve (device physics level).
	res.Overclock = attacks.OverclockSweep(dev, port, cfg.OverclockFactors, cfg.OverclockTrials, rng.New(cfg.Seed+7))
	return res, nil
}

// Format renders the security evaluation.
func (r *SecurityResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Security evaluation (Section 4.2) — δ = %.3g s, honest %d cycles, forged %d cycles\n",
		r.Delta, r.HonestCycles, r.ForgedCycles)
	for _, o := range r.Outcomes {
		verdict := "REJECTED"
		if o.Result.Accepted {
			verdict = "ACCEPTED"
		}
		fmt.Fprintf(&b, "  %-22s %-8s (expected %-20s) %s\n", o.Name, verdict, o.Expected, o.Detail)
		if !o.Result.Accepted {
			fmt.Fprintf(&b, "  %22s   reason: %s\n", "", o.Result.Reason)
		}
	}
	fmt.Fprintf(&b, "  overclock factor needed to hide forgery: %.3f\n", r.OverclockFactorNeeded)
	fmt.Fprintf(&b, "  oracle attack time %.4g s vs honest compute %.4g s\n", r.OracleAttackSeconds, r.HonestComputeSeconds)
	fmt.Fprintf(&b, "  ML modeling: raw %.1f%%, obfuscated %.1f%% per-bit (full-z %.1f%%)\n",
		100*r.MLRawAccuracy, 100*r.MLObfAccuracy, 100*r.MLObfFullZ)
	fmt.Fprintf(&b, "  overclock corruption sweep (physics level; the protocol-level timing\n")
	fmt.Fprintf(&b, "  monitor corrupts everything past x1.0):\n")
	fmt.Fprintf(&b, "    factor | invalid-bit frac | corrupted challenges | HD bits\n")
	for _, p := range r.Overclock {
		fmt.Fprintf(&b, "    x%4.2f  | %.4f           | %.3f                | %.2f\n",
			p.Factor, p.InvalidBitFraction, p.ChallengeCorruptFraction, p.ResponseHD)
	}
	return b.String()
}

// Sane reports whether every adversary was rejected and the honest prover
// accepted — the paper's qualitative claims.
func (r *SecurityResult) Sane() bool {
	for _, o := range r.Outcomes {
		want := strings.HasPrefix(o.Expected, "accept")
		if o.Result.Accepted != want {
			return false
		}
	}
	return true
}
