package vcd

import (
	"bytes"
	"strings"
	"testing"

	"pufatt/internal/delay"
	"pufatt/internal/netlist"
	"pufatt/internal/sim"
)

func unitDelays(nl *netlist.Netlist) delay.Table {
	t := delay.Table{Ps: make([]float64, len(nl.Gates))}
	for g := range nl.Gates {
		switch nl.Gates[g].Kind {
		case netlist.Input, netlist.Const0, netlist.Const1:
		default:
			t.Ps[g] = 10
		}
	}
	return t
}

func TestIDCode(t *testing.T) {
	seen := map[string]bool{}
	for n := 0; n < 500; n++ {
		c := idCode(n)
		if c == "" || seen[c] {
			t.Fatalf("idCode(%d) = %q duplicate/empty", n, c)
		}
		for _, r := range c {
			if r < 33 || r > 126 {
				t.Fatalf("idCode(%d) contains non-printable %q", n, r)
			}
		}
		seen[c] = true
	}
	if idCode(0) != "!" {
		t.Errorf("idCode(0) = %q", idCode(0))
	}
}

func TestCaptureFullAdderTrace(t *testing.T) {
	nl := netlist.BuildFullAdderNetlist()
	es := sim.NewEventSim(nl, unitDelays(nl))
	var buf bytes.Buffer
	from := []uint8{0, 0, 0}
	to := []uint8{1, 1, 1}
	if err := Capture(es, nl, from, to, "fulladder", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ps $end",
		"$scope module fulladder $end",
		"$var wire 1",
		"$enddefinitions $end",
		"$dumpvars",
		"#0", // the input transitions at t=0
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Inputs a, b, cin flip at t=0; sum settles by 20 ps (two XOR levels).
	if !strings.Contains(out, "#20") {
		t.Errorf("VCD missing the settled-output timestamp:\n%s", out)
	}
	// The trace must contain value changes after the header.
	body := out[strings.Index(out, "$end\n#"):]
	if strings.Count(body, "\n") < 6 {
		t.Errorf("trace suspiciously short:\n%s", body)
	}
}

func TestCapturePUFDatapathRace(t *testing.T) {
	// Dump one PUF query's race on a small datapath and check both ALUs'
	// outputs appear with distinct timestamps.
	dp := netlist.BuildPUFDatapath(netlist.PUFDatapathConfig{Width: 4})
	nl := dp.Net
	tab := unitDelays(nl)
	// Make ALU1 slightly slower so the race is visible in the trace.
	for g := range nl.Gates {
		if g > nl.Outputs[0] {
			tab.Ps[g] *= 1.25
		}
	}
	es := sim.NewEventSim(nl, tab)
	var buf bytes.Buffer
	from := make([]uint8, 8)
	to := []uint8{1, 1, 1, 1, 1, 0, 0, 0} // a=0xF, b=0x1: full carry chain
	if err := Capture(es, nl, from, to, "pufrace", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "o(0)") || !strings.Contains(out, "op(0)") {
		t.Errorf("output names missing from trace:\n%s", out[:400])
	}
	// Multiple distinct timestamps = an actual race, not a single step.
	if strings.Count(out, "#") < 4 {
		t.Errorf("expected a multi-step race, got:\n%s", out)
	}
}

func TestWriterTracksSelectedGatesOnly(t *testing.T) {
	nl := netlist.BuildFullAdderNetlist()
	var buf bytes.Buffer
	w := New(&buf, nl, []int{nl.Outputs[0]})
	if err := w.Header("sel", nil); err != nil {
		t.Fatal(err)
	}
	w.Transition(nl.Outputs[0], 5, 1)
	w.Transition(nl.Inputs[0], 6, 1) // untracked: must not appear
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "$var") != 1 {
		t.Errorf("expected exactly one declared signal:\n%s", out)
	}
	if !strings.Contains(out, "#5") || strings.Contains(out, "#6") {
		t.Errorf("tracking filter wrong:\n%s", out)
	}
}

func TestHeaderInitialValues(t *testing.T) {
	nl := netlist.BuildFullAdderNetlist()
	var buf bytes.Buffer
	w := New(&buf, nl, nil)
	vals := nl.Evaluate([]uint8{1, 0, 0})
	if err := w.Header("init", vals); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if strings.Contains(buf.String(), "x") && strings.Contains(buf.String(), "$dumpvars\nx") {
		t.Error("initial values should be concrete, not x")
	}
}
