package core

import (
	"bytes"
	"runtime"
	"testing"

	"pufatt/internal/delay"
	"pufatt/internal/rng"
	"pufatt/internal/stats"
)

// twinDevice manufactures a fresh but physically identical copy of the test
// device (same master seed, same chip ID), so worker-count comparisons start
// from identical noise-epoch state.
func twinDevice(t testing.TB, seed uint64) *Device {
	t.Helper()
	return MustNewDevice(MustNewDesign(testConfig()), rng.New(seed), 0)
}

func batchChallenges(d *Design, n int, seed uint64) [][]uint8 {
	src := rng.New(seed)
	m := ChallengeMatrix(d, n)
	for k := range m {
		d.ExpandChallengeInto(m[k], src.Uint64(), 0)
	}
	return m
}

// TestParallelDeterminismBatch is the core determinism guarantee: the batch
// result matrix is byte-identical at workers=1, workers=4, and
// workers=GOMAXPROCS, for all three evaluation modes.
func TestParallelDeterminismBatch(t *testing.T) {
	counts := []int{1, 4, 0} // 0 = GOMAXPROCS
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		counts = append(counts, g)
	}
	type mode struct {
		name string
		eval func(dev *Device, ch [][]uint8, workers int) [][]uint8
	}
	modes := []mode{
		{"raw", func(dev *Device, ch [][]uint8, w int) [][]uint8 { return dev.RawResponses(ch, w) }},
		{"noiseless", func(dev *Device, ch [][]uint8, w int) [][]uint8 { return dev.NoiselessResponses(ch, w) }},
		{"majority5", func(dev *Device, ch [][]uint8, w int) [][]uint8 { return dev.MajorityResponses(ch, 5, w) }},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			var ref [][]uint8
			for i, w := range counts {
				dev := twinDevice(t, 101)
				ch := batchChallenges(dev.Design(), 300, 102)
				got := m.eval(dev, ch, w)
				if i == 0 {
					ref = got
					continue
				}
				for k := range ref {
					if !bytes.Equal(ref[k], got[k]) {
						t.Fatalf("workers=%d row %d differs from workers=%d:\n%v\n%v",
							w, k, counts[0], got[k], ref[k])
					}
				}
			}
		})
	}
}

// Consecutive batches on one device must draw fresh noise (the epoch
// counter), or every batch would repeat the same "random" measurement.
func TestBatchEpochsAdvanceNoise(t *testing.T) {
	dev := twinDevice(t, 103)
	ch := batchChallenges(dev.Design(), 200, 104)
	a := dev.RawResponses(ch, 2)
	b := dev.RawResponses(ch, 2)
	var hd stats.Summary
	for k := range a {
		hd.Add(float64(stats.HammingDistance(a[k], b[k])))
	}
	frac := hd.Mean() / float64(dev.Design().ResponseBits())
	if frac < 0.01 || frac > 0.3 {
		t.Errorf("repeat-batch noise fraction %v outside the plausible band (epoch not advancing?)", frac)
	}
}

// The batch path must agree with the sequential path on everything
// deterministic: noiseless responses are the same physics, so they must be
// bit-identical to Device.NoiselessResponse.
func TestBatchNoiselessMatchesSequential(t *testing.T) {
	dev := twinDevice(t, 105)
	ch := batchChallenges(dev.Design(), 100, 106)
	batch := dev.NoiselessResponses(ch, 3)
	for k := range ch {
		want := dev.NoiselessResponse(ch[k])
		if !bytes.Equal(batch[k], want) {
			t.Fatalf("row %d: batch noiseless %v, sequential %v", k, batch[k], want)
		}
	}
}

// Batch noise must be statistically equivalent to sequential noise: the
// intra-chip error rate measured through the batch path should sit in the
// same band the sequential TestRawResponseIsNoisy pins.
func TestBatchRawNoiseRateMatchesSequential(t *testing.T) {
	dev := twinDevice(t, 107)
	ch := batchChallenges(dev.Design(), 400, 108)
	noiseless := dev.NoiselessResponses(ch, 2)
	raw := dev.RawResponses(ch, 2)
	var hd stats.Summary
	for k := range ch {
		hd.Add(float64(stats.HammingDistance(noiseless[k], raw[k])))
	}
	frac := hd.Mean() / float64(dev.Design().ResponseBits())
	if frac < 0.02 || frac > 0.3 {
		t.Errorf("batch intra-chip noise fraction %v outside the plausible band", frac)
	}
}

// Majority voting through the batch path must reduce the error rate, same
// as the sequential MajorityResponse.
func TestBatchMajorityReducesNoise(t *testing.T) {
	dev := twinDevice(t, 109)
	ch := batchChallenges(dev.Design(), 400, 110)
	noiseless := dev.NoiselessResponses(ch, 2)
	raw := dev.RawResponses(ch, 2)
	voted := dev.MajorityResponses(ch, 5, 2)
	var rawHD, votedHD stats.Summary
	for k := range ch {
		rawHD.Add(float64(stats.HammingDistance(noiseless[k], raw[k])))
		votedHD.Add(float64(stats.HammingDistance(noiseless[k], voted[k])))
	}
	if votedHD.Mean() >= rawHD.Mean() {
		t.Errorf("5-vote majority error %.3f not below raw %.3f", votedHD.Mean(), rawHD.Mean())
	}
}

// The batch honours the current operating corner and per-device extra skew,
// like the sequential path.
func TestBatchRespectsCornerAndSkew(t *testing.T) {
	dev := twinDevice(t, 111)
	ch := batchChallenges(dev.Design(), 50, 112)
	nominal := dev.NoiselessResponses(ch, 2)
	dev.SetConditions(delay.Conditions{VddScale: 0.90, TempC: 120})
	corner := dev.NoiselessResponses(ch, 2)
	for k := range ch {
		want := dev.NoiselessResponse(ch[k])
		if !bytes.Equal(corner[k], want) {
			t.Fatalf("corner row %d: batch %v, sequential %v", k, corner[k], want)
		}
	}
	changed := 0
	for k := range ch {
		changed += stats.HammingDistance(nominal[k], corner[k])
	}
	if changed == 0 {
		t.Log("corner shift flipped no bits in this sample (allowed, but unusual)")
	}
	dev.SetConditions(delay.Nominal())
}

// Reused dst matrices must be filled in place without reallocation.
func TestBatchReusesDst(t *testing.T) {
	dev := twinDevice(t, 113)
	be := NewBatchEvaluator(dev)
	ch := batchChallenges(dev.Design(), 64, 114)
	dst := be.ResponseMatrix(64)
	p0 := &dst[0][0]
	out := be.RawResponses(ch, dst, 2)
	if &out[0][0] != p0 {
		t.Fatal("batch reallocated the caller's dst matrix")
	}
}

func TestBatchQueryAccounting(t *testing.T) {
	dev := twinDevice(t, 115)
	before := dev.Queries()
	ch := batchChallenges(dev.Design(), 30, 116)
	dev.RawResponses(ch, 2)
	dev.MajorityResponses(ch, 5, 2)
	if got, want := dev.Queries()-before, uint64(30+30*5); got != want {
		t.Errorf("queries advanced by %d, want %d", got, want)
	}
}

func TestBatchRejectsBadChallenge(t *testing.T) {
	dev := twinDevice(t, 117)
	defer func() {
		if recover() == nil {
			t.Fatal("short challenge accepted")
		}
	}()
	dev.RawResponses([][]uint8{make([]uint8, 3)}, 1)
}

func TestBatchEmpty(t *testing.T) {
	dev := twinDevice(t, 118)
	if got := dev.RawResponses(nil, 4); len(got) != 0 {
		t.Fatalf("empty batch returned %d rows", len(got))
	}
}

// TestRawResponseAliasingContract pins the documented ownership rule of the
// sequential API: RawResponse returns device-owned scratch invalidated by
// the next call, while RawResponseCopy and batch rows are caller-owned.
func TestRawResponseAliasingContract(t *testing.T) {
	dev := twinDevice(t, 119)
	d := dev.Design()
	ch1 := d.ExpandChallenge(1, 0)
	ch2 := d.ExpandChallenge(2, 0)
	r1 := dev.RawResponse(ch1)
	r2 := dev.RawResponse(ch2)
	if &r1[0] != &r2[0] {
		t.Fatal("RawResponse returned fresh storage; the documented device-owned buffer contract changed")
	}
	cp := dev.RawResponseCopy(ch1)
	dev.RawResponse(ch2)
	cp2 := dev.RawResponseCopy(ch1)
	if &cp[0] == &cp2[0] {
		t.Fatal("RawResponseCopy returned shared storage")
	}
	// Batch rows must be independent storage from the device scratch and
	// from each other.
	rows := dev.RawResponses(batchChallenges(d, 2, 120), 1)
	if &rows[0][0] == &dev.respBuf[0] || &rows[1][0] == &dev.respBuf[0] {
		t.Fatal("batch rows alias the device scratch buffer")
	}
}
