package core

import (
	"fmt"

	"pufatt/internal/delay"
	"pufatt/internal/netlist"
	"pufatt/internal/rng"
	"pufatt/internal/sim"
	"pufatt/internal/variation"
)

// Device is one manufactured instance of an ALU PUF Design: a chip with its
// own process-variation realisation. A Device is not safe for concurrent
// use.
type Device struct {
	design *Design
	chip   *variation.Chip
	dVth   []float64
	cond   delay.Conditions
	tables map[delay.Conditions]delay.Table
	engine *sim.Engine
	noise  *rng.Source
	// jitterScale converts the configured nominal jitter to the current
	// corner (slower corner → proportionally larger arrival jitter).
	jitterScale float64
	// challenge buffer reused across queries.
	inBuf, respBuf []uint8
	queries        uint64
	// extraSkewPs is optional per-bit skew (FPGA board routing + PDL).
	extraSkewPs []float64
	// agingVth accumulates per-gate BTI drift (see aging.go); agingSrc
	// draws its variability, and cones memoises fanin cones for the
	// directed-aging procedure.
	agingVth []float64
	agingSrc *rng.Source
	cones    map[int][]int
	// epoch is the reconfiguration epoch (see epoch.go); epochVth is its
	// per-gate Vth overlay (nil at epoch 0), drawn from epochRoot.
	epoch     uint32
	epochVth  []float64
	epochRoot *rng.Source
	// batch is the lazily created parallel evaluator (see batch.go);
	// batchEpochs counts batch invocations so each batch draws fresh,
	// worker-count-independent per-challenge noise streams.
	batch       *BatchEvaluator
	batchEpochs uint64
	// evalEngine is the per-device engine override (engine.go);
	// EngineDefault defers to the package default.
	evalEngine EvalEngine
	// linear caches the fitted linear-delay fast model (linear.go); physGen
	// counts physics changes (aging, epoch, extra skew) so stale fits are
	// detected and redone.
	linear  *LinearModel
	physGen uint64
}

// NewDevice manufactures chip chipID of the design, drawing its process
// variation from the master source. The same (master seed, chipID) always
// yields the same physical chip; the arbiter-noise stream is also derived
// from it, so whole experiments replay bit-exactly.
func NewDevice(d *Design, master *rng.Source, chipID int) (*Device, error) {
	chip, err := variation.NewChip(d.cfg.Variation, master, chipID)
	if err != nil {
		return nil, err
	}
	dev := &Device{
		design: d,
		chip:   chip,
		dVth:   chip.VthOffsets(d.datapath.Net, 0, 0),
		tables: make(map[delay.Conditions]delay.Table),
		noise:  master.SubN("device/noise", chipID),
		// The epoch root is bound to the manufacturing seed, never the
		// mutable noise stream, so epoch overlays are a pure function of
		// (master seed, chipID, epoch) — reproducible for audit.
		epochRoot: master.SubN("device/epoch", chipID),
		inBuf:     make([]uint8, 2*d.cfg.Width),
		respBuf:   make([]uint8, d.ResponseBits()),
	}
	dev.SetConditions(delay.Nominal())
	return dev, nil
}

// MustNewDevice is NewDevice that panics on error.
func MustNewDevice(d *Design, master *rng.Source, chipID int) *Device {
	dev, err := NewDevice(d, master, chipID)
	if err != nil {
		panic(err)
	}
	return dev
}

// Design returns the device's design.
func (dev *Device) Design() *Design { return dev.design }

// ChipID returns the chip identifier.
func (dev *Device) ChipID() int { return dev.chip.ID() }

// Queries returns how many raw PUF evaluations this device has served; the
// oracle-attack analysis uses it to account for PUF access bandwidth.
func (dev *Device) Queries() uint64 { return dev.queries }

// Conditions returns the current operating corner.
func (dev *Device) Conditions() delay.Conditions { return dev.cond }

// SetConditions moves the device to an operating corner (supply voltage and
// temperature), rebuilding (or reusing a cached) delay table.
func (dev *Device) SetConditions(cond delay.Conditions) {
	dev.cond = cond
	tab, ok := dev.tables[cond]
	if !ok {
		tab = delay.BuildTable(dev.design.model, dev.design.datapath.Net, dev.effectiveVth(), dev.design.gateSkewPs, cond)
		dev.tables[cond] = tab
	}
	if dev.engine == nil {
		dev.engine = sim.NewEngine(dev.design.datapath.Net, tab)
	} else {
		dev.engine.SetDelays(tab)
	}
	dev.jitterScale = dev.design.model.InverterDelay(cond) / dev.design.model.InverterDelay(delay.Nominal())
}

// arrivalDelta returns, for response bit i, the arrival-time difference
// (ALU1 + design skew + per-device extra skew) − ALU0 given the engine's
// last run.
func (dev *Device) arrivalDelta(arr []float64, i int) float64 {
	a0, a1 := dev.design.datapath.Pair(i)
	d := arr[a1] + dev.design.skewPs[i] - arr[a0]
	if dev.extraSkewPs != nil {
		d += dev.extraSkewPs[i]
	}
	return d
}

// SetExtraSkewPs installs per-bit additive skew on top of the design skew:
// board-level routing mismatch and PDL compensation in the FPGA prototype
// (package fpga). Pass nil to clear.
func (dev *Device) SetExtraSkewPs(skew []float64) {
	if skew != nil && len(skew) != dev.design.ResponseBits() {
		panic(fmt.Sprintf("core: extra skew of %d entries for %d response bits", len(skew), dev.design.ResponseBits()))
	}
	dev.extraSkewPs = skew
	dev.physGen++ // arbiter deltas changed: linear-model fits are stale
}

// ExtraSkewPs returns the per-device extra skew (nil if unset).
func (dev *Device) ExtraSkewPs() []float64 { return dev.extraSkewPs }

// RawResponse measures the raw (pre-correction, pre-obfuscation) PUF
// response to the challenge at the current corner, including per-evaluation
// arbiter noise. Response bit i is 1 when ALU 0's output settles first.
//
// Aliasing contract: the returned slice is device-owned scratch, overwritten
// in place by the next RawResponse/MajorityResponse/ClockedResponse call —
// finish reading (or copy) before querying again, and never retain it.
// Callers that need stable storage use RawResponseCopy; batch callers use
// RawResponses, whose rows are caller-owned. TestRawResponseAliasingContract
// enforces this.
func (dev *Device) RawResponse(challenge []uint8) []uint8 {
	arr := dev.arrivals(challenge)
	jitter := dev.design.cfg.JitterPs * dev.jitterScale
	for i := range dev.respBuf {
		d := dev.arrivalDelta(arr, i)
		if jitter > 0 {
			d += dev.noise.NormMS(0, jitter)
		}
		if d > 0 {
			dev.respBuf[i] = 1
		} else {
			dev.respBuf[i] = 0
		}
	}
	dev.queries++
	return dev.respBuf
}

// RawResponseCopy is RawResponse into freshly allocated storage.
func (dev *Device) RawResponseCopy(challenge []uint8) []uint8 {
	return append([]uint8(nil), dev.RawResponse(challenge)...)
}

// MajorityResponse measures the raw response votes times and returns the
// bitwise majority, reducing the effective per-bit error rate (standard
// temporal majority voting; see DESIGN.md on reaching the paper's claimed
// false-negative rate with a real (32,6,16) decoder). votes must be odd.
func (dev *Device) MajorityResponse(challenge []uint8, votes int) []uint8 {
	if votes < 1 || votes%2 == 0 {
		panic(fmt.Sprintf("core: majority votes %d must be odd and positive", votes))
	}
	counts := make([]int, dev.design.ResponseBits())
	for v := 0; v < votes; v++ {
		r := dev.RawResponse(challenge)
		for i, bit := range r {
			counts[i] += int(bit)
		}
	}
	out := make([]uint8, len(counts))
	for i, c := range counts {
		if 2*c > votes {
			out[i] = 1
		}
	}
	return out
}

// NoiselessResponse measures the response without arbiter noise: the
// idealised expected response at the current corner. Enrollment and
// emulation use it at the nominal corner.
func (dev *Device) NoiselessResponse(challenge []uint8) []uint8 {
	arr := dev.arrivals(challenge)
	out := make([]uint8, dev.design.ResponseBits())
	for i := range out {
		if dev.arrivalDelta(arr, i) > 0 {
			out[i] = 1
		}
	}
	dev.queries++
	return out
}

func (dev *Device) arrivals(challenge []uint8) []float64 {
	if len(challenge) != 2*dev.design.cfg.Width {
		panic(fmt.Sprintf("core: challenge of %d bits, want %d", len(challenge), 2*dev.design.cfg.Width))
	}
	copy(dev.inBuf, challenge)
	_, arr := dev.engine.Run(dev.inBuf)
	return arr
}

// ArrivalDeltas returns the per-bit arrival-time differences for a
// challenge (positive = ALU 0 first). Attack code uses this as the
// idealised side-channel; tests use it to probe the physics.
func (dev *Device) ArrivalDeltas(challenge []uint8) []float64 {
	arr := dev.arrivals(challenge)
	out := make([]float64, dev.design.ResponseBits())
	for i := range out {
		out[i] = dev.arrivalDelta(arr, i)
	}
	return out
}

// CriticalPathPs returns the static worst-case propagation delay T_ALU of
// the PUF datapath at the current corner: the topological longest path,
// ignoring logical masking. The overclocking condition of Section 4.2 is
// T_ALU + T_set < T_cycle.
func (dev *Device) CriticalPathPs() float64 {
	nl := dev.design.datapath.Net
	tab := dev.tables[dev.cond]
	arr := make([]float64, len(nl.Gates))
	worst := 0.0
	for _, g := range nl.Order {
		gate := &nl.Gates[g]
		t := 0.0
		for _, f := range gate.Fanin {
			if arr[f] > t {
				t = arr[f]
			}
		}
		arr[g] = t + tab.Ps[g]
		if arr[g] > worst {
			worst = arr[g]
		}
	}
	return worst
}

// ClockedResponse measures the raw response when the PUF output registers
// are latched after one clock period tCyclePs with register setup time
// tSetupPs. Bits whose races have not resolved by the latch deadline
// (max arrival + setup > cycle) are latched from a metastable arbiter and
// resolve randomly — the overclocking failure mode of Section 4.2. The
// returned slice aliases the device buffer; valid reports how many bits
// latched cleanly.
func (dev *Device) ClockedResponse(challenge []uint8, tCyclePs, tSetupPs float64) (resp []uint8, valid int) {
	arr := dev.arrivals(challenge)
	jitter := dev.design.cfg.JitterPs * dev.jitterScale
	deadline := tCyclePs - tSetupPs
	for i := range dev.respBuf {
		a0, a1 := dev.design.datapath.Pair(i)
		t0 := arr[a0]
		t1 := arr[a1] + dev.design.skewPs[i]
		if dev.extraSkewPs != nil {
			t1 += dev.extraSkewPs[i]
		}
		if t0 <= deadline && t1 <= deadline {
			d := t1 - t0
			if jitter > 0 {
				d += dev.noise.NormMS(0, jitter)
			}
			if d > 0 {
				dev.respBuf[i] = 1
			} else {
				dev.respBuf[i] = 0
			}
			valid++
		} else {
			// Setup-time violation: the register samples an unresolved
			// arbiter.
			dev.respBuf[i] = dev.noise.Bit()
		}
	}
	dev.queries++
	return dev.respBuf, valid
}

// MinReliableCyclePs returns the smallest clock period at which every
// response bit of the given challenge latches cleanly (max pair arrival +
// setup), at the current corner.
func (dev *Device) MinReliableCyclePs(challenge []uint8, tSetupPs float64) float64 {
	arr := dev.arrivals(challenge)
	worst := 0.0
	for i := 0; i < dev.design.ResponseBits(); i++ {
		a0, a1 := dev.design.datapath.Pair(i)
		if arr[a0] > worst {
			worst = arr[a0]
		}
		t := arr[a1] + dev.design.skewPs[i]
		if dev.extraSkewPs != nil {
			t += dev.extraSkewPs[i]
		}
		if t > worst {
			worst = t
		}
	}
	return worst + tSetupPs
}

// NominalTable returns (a copy of) the device's nominal-corner delay
// table, for external analyses (waveform capture, timing studies).
func (dev *Device) NominalTable() delay.Table {
	nom := delay.Nominal()
	tab, ok := dev.tables[nom]
	if !ok {
		tab = delay.BuildTable(dev.design.model, dev.design.datapath.Net, dev.effectiveVth(), dev.design.gateSkewPs, nom)
		dev.tables[nom] = tab
	}
	return tab.Clone()
}

// EventDrivenSettleTime runs the full event-driven simulator for the
// challenge (from the all-zero state) and returns the time of the last
// signal transition — a cross-check on the levelized engine and the basis
// for glitch-accurate analyses.
func (dev *Device) EventDrivenSettleTime(challenge []uint8) float64 {
	es := sim.NewEventSim(dev.design.datapath.Net, dev.tables[dev.cond])
	es.Settle(make([]uint8, 2*dev.design.cfg.Width))
	in := make([]uint8, 2*dev.design.cfg.Width)
	copy(in, challenge)
	es.Apply(in)
	return es.Run()
}

// ExportModel extracts the verifier-side emulation model H: the gate-level
// delay table at the nominal corner plus the design skew. In an ASIC this
// readout happens through a fuse-protected test interface at manufacturing
// time; here it is a method only the enrolling authority calls.
func (dev *Device) ExportModel() *Model {
	nom := delay.Nominal()
	tab, ok := dev.tables[nom]
	if !ok {
		tab = delay.BuildTable(dev.design.model, dev.design.datapath.Net, dev.effectiveVth(), dev.design.gateSkewPs, nom)
		dev.tables[nom] = tab
	}
	skew := dev.design.SkewPs()
	if dev.extraSkewPs != nil {
		for i := range skew {
			skew[i] += dev.extraSkewPs[i]
		}
	}
	return &Model{
		Width:    dev.design.cfg.Width,
		UseCarry: dev.design.cfg.UseCarry,
		ChipID:   dev.chip.ID(),
		Table:    tab.Clone(),
		SkewPs:   skew,
	}
}

// Emulator returns a verifier-side emulator for this device (shorthand for
// NewEmulator(design, dev.ExportModel())).
func (dev *Device) Emulator() *Emulator {
	return NewEmulator(dev.design, dev.ExportModel())
}

// netlistOf is a test hook returning the device's netlist.
func (dev *Device) netlistOf() *netlist.Netlist { return dev.design.datapath.Net }
