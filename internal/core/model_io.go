package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Serialisation of the emulation model H. The trusted enrollment facility
// extracts H once per device and must hand it to the verifier out of band;
// this file gives it a stable binary format (magic, version, dimensions,
// little-endian float64 tables) with integrity checks on load. H is the
// verifier's secret: encrypt/authenticate the container at rest — this
// format provides structure, not confidentiality.

const (
	modelMagic   = 0x50554648 // "PUFH"
	modelVersion = 1
)

// WriteTo serialises the model.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	flags := uint32(0)
	if m.UseCarry {
		flags = 1
	}
	for _, v := range []any{
		uint32(modelMagic), uint32(modelVersion),
		uint32(m.Width), flags, int64(m.ChipID),
		uint32(len(m.Table.Ps)), uint32(len(m.SkewPs)),
	} {
		if err := put(v); err != nil {
			return n, err
		}
	}
	for _, d := range m.Table.Ps {
		if err := put(math.Float64bits(d)); err != nil {
			return n, err
		}
	}
	for _, s := range m.SkewPs {
		if err := put(math.Float64bits(s)); err != nil {
			return n, err
		}
	}
	if err := put(m.checksum()); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadModel deserialises a model written by WriteTo, validating structure
// and checksum.
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	get32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	magic, err := get32()
	if err != nil {
		return nil, fmt.Errorf("core: reading model header: %w", err)
	}
	if magic != modelMagic {
		return nil, errors.New("core: not a PUF model file")
	}
	version, err := get32()
	if err != nil {
		return nil, err
	}
	if version != modelVersion {
		return nil, fmt.Errorf("core: unsupported model version %d", version)
	}
	width, err := get32()
	if err != nil {
		return nil, err
	}
	flags, err := get32()
	if err != nil {
		return nil, err
	}
	var chipID int64
	if err := binary.Read(br, binary.LittleEndian, &chipID); err != nil {
		return nil, err
	}
	nTable, err := get32()
	if err != nil {
		return nil, err
	}
	nSkew, err := get32()
	if err != nil {
		return nil, err
	}
	const maxEntries = 1 << 24
	if width == 0 || width > 64 || nTable > maxEntries || nSkew > maxEntries {
		return nil, errors.New("core: model dimensions out of range")
	}
	m := &Model{
		Width:    int(width),
		UseCarry: flags&1 != 0,
		ChipID:   int(chipID),
	}
	m.Table.Ps = make([]float64, nTable)
	for i := range m.Table.Ps {
		var bits uint64
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, err
		}
		m.Table.Ps[i] = math.Float64frombits(bits)
	}
	m.SkewPs = make([]float64, nSkew)
	for i := range m.SkewPs {
		var bits uint64
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, err
		}
		m.SkewPs[i] = math.Float64frombits(bits)
	}
	var sum uint64
	if err := binary.Read(br, binary.LittleEndian, &sum); err != nil {
		return nil, err
	}
	if sum != m.checksum() {
		return nil, errors.New("core: model checksum mismatch (corrupted file)")
	}
	return m, nil
}

// checksum is an FNV-1a over the model's semantic content.
func (m *Model) checksum() uint64 {
	const prime = 0x100000001b3
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v >> (8 * uint(i)) & 0xff
			h *= prime
		}
	}
	mix(uint64(m.Width))
	if m.UseCarry {
		mix(1)
	} else {
		mix(0)
	}
	mix(uint64(int64(m.ChipID)))
	for _, d := range m.Table.Ps {
		mix(math.Float64bits(d))
	}
	for _, s := range m.SkewPs {
		mix(math.Float64bits(s))
	}
	return h
}
