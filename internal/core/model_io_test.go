package core

import (
	"bytes"
	"testing"

	"pufatt/internal/rng"
)

func TestModelSerializationRoundTrip(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(60), 5)
	m := dev.ExportModel()
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != m.Width || got.UseCarry != m.UseCarry || got.ChipID != 5 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Table.Ps) != len(m.Table.Ps) || len(got.SkewPs) != len(m.SkewPs) {
		t.Fatal("dimensions mismatch")
	}
	for i := range m.Table.Ps {
		if got.Table.Ps[i] != m.Table.Ps[i] {
			t.Fatal("delay table corrupted")
		}
	}
	// The deserialised model must drive an emulator identically.
	em := NewEmulator(d, got)
	ref := NewEmulator(d, m)
	src := rng.New(61)
	for k := 0; k < 50; k++ {
		ch := d.ExpandChallenge(src.Uint64(), 0)
		a := em.Respond(ch)
		b := ref.Respond(ch)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("deserialised emulator diverges")
			}
		}
	}
}

func TestModelDeserializationRejectsGarbage(t *testing.T) {
	if _, err := ReadModel(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short input accepted")
	}
	if _, err := ReadModel(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Error("zero magic accepted")
	}
}

func TestModelDeserializationDetectsCorruption(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(62), 0)
	var buf bytes.Buffer
	if _, err := dev.ExportModel().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a byte in the middle of the delay table.
	raw[len(raw)/2] ^= 0xFF
	if _, err := ReadModel(bytes.NewReader(raw)); err == nil {
		t.Error("corrupted model accepted")
	}
}

func TestModelDeserializationRejectsHugeDimensions(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(63), 0)
	var buf bytes.Buffer
	dev.ExportModel().WriteTo(&buf)
	raw := buf.Bytes()
	// Overwrite the table-length field (offset: 4+4+4+4+8 = 24).
	raw[24] = 0xff
	raw[25] = 0xff
	raw[26] = 0xff
	raw[27] = 0x7f
	if _, err := ReadModel(bytes.NewReader(raw)); err == nil {
		t.Error("oversized dimension accepted")
	}
}
