package core

import (
	"fmt"

	"pufatt/internal/ecc"
	"pufatt/internal/obfuscate"
)

// Output is the result of one PUF() invocation: the obfuscated response z
// and the helper data for each of the eight raw responses consumed, in
// order. Helper data is public by construction of the secure sketch; z is
// the value entangled into the attestation checksum.
type Output struct {
	Z       []uint8
	Helpers []uint64
}

// ZWord returns z packed into a uint64 (low bit = z[0]).
func (o *Output) ZWord() uint64 { return ecc.BitsToWord(o.Z) }

// Pipeline is the prover-side PUF() of the paper: raw ALU PUF measurement,
// syndrome (helper data) generation, and the XOR obfuscation network,
// composed per Section 2. One Query consumes eight raw responses derived
// from a single challenge seed.
type Pipeline struct {
	dev    *Device
	sketch *ecc.Sketch
	net    *obfuscate.Network
	// Votes is the temporal majority-voting factor applied to each raw
	// measurement before helper-data generation (odd; 1 disables voting).
	// The default of 5 drives the per-bit error from ~11 % to ~1.2 %, which
	// together with maximum-likelihood sketch recovery reaches the paper's
	// claimed PUF() reliability (see EXPERIMENTS.md, Figure 4 row).
	Votes int
}

// NewPipeline composes the full PUF() over a device. The device's response
// width must be 16 or 32 bits (the Reed–Muller sketch instances).
func NewPipeline(dev *Device) (*Pipeline, error) {
	bits := dev.design.ResponseBits()
	code, err := ecc.ForResponseWidth(bits)
	if err != nil {
		return nil, fmt.Errorf("core: pipeline unavailable: %w", err)
	}
	return &Pipeline{
		dev:    dev,
		sketch: ecc.NewSketch(code),
		net:    obfuscate.MustNew(bits),
		Votes:  5,
	}, nil
}

// MustNewPipeline is NewPipeline that panics on error.
func MustNewPipeline(dev *Device) *Pipeline {
	p, err := NewPipeline(dev)
	if err != nil {
		panic(err)
	}
	return p
}

// Device returns the underlying device.
func (p *Pipeline) Device() *Device { return p.dev }

// ResponseBits returns the width of z.
func (p *Pipeline) ResponseBits() int { return p.dev.design.ResponseBits() }

// Query runs one full PUF() invocation for the challenge seed.
func (p *Pipeline) Query(seed uint64) (*Output, error) {
	n := obfuscate.ResponsesPerOutput
	responses := make([][]uint8, n)
	helpers := make([]uint64, n)
	for j := 0; j < n; j++ {
		ch := p.dev.design.ExpandChallenge(seed, j)
		y := p.dev.MajorityResponse(ch, p.Votes)
		h, err := p.sketch.Generate(y)
		if err != nil {
			return nil, err
		}
		responses[j] = y
		helpers[j] = h
	}
	z, err := p.net.Apply(responses)
	if err != nil {
		return nil, err
	}
	pufQueries.Inc()
	return &Output{Z: z, Helpers: helpers}, nil
}

// ReferenceSource supplies the verifier's reference raw responses for a
// challenge seed: either PUF emulation from the model H (Emulator) or a
// pre-recorded CRP database (package crp). Section 2 discusses both
// verification approaches.
type ReferenceSource interface {
	// ReferenceResponse returns the expected noiseless raw response for
	// the j-th expanded challenge of the seed.
	ReferenceResponse(seed uint64, j int) ([]uint8, error)
	// ResponseBits returns the raw-response width.
	ResponseBits() int
}

// ReferenceResponse implements ReferenceSource by emulating the device.
func (e *Emulator) ReferenceResponse(seed uint64, j int) ([]uint8, error) {
	return e.Respond(e.design.ExpandChallenge(seed, j)), nil
}

// ResponseBits implements ReferenceSource.
func (e *Emulator) ResponseBits() int { return e.design.ResponseBits() }

// VerifierPipeline is the verifier-side counterpart: it recomputes z from a
// reference source (emulation model or CRP database) and the prover's
// helper data, per the reverse fuzzy-extractor flow.
type VerifierPipeline struct {
	src    ReferenceSource
	sketch *ecc.Sketch
	net    *obfuscate.Network
}

// NewVerifierPipeline composes the verifier's PUF() emulation.
func NewVerifierPipeline(em *Emulator) (*VerifierPipeline, error) {
	return NewVerifierPipelineFrom(em)
}

// NewVerifierPipelineFrom composes the verifier's PUF() recovery over an
// arbitrary reference source.
func NewVerifierPipelineFrom(src ReferenceSource) (*VerifierPipeline, error) {
	bits := src.ResponseBits()
	code, err := ecc.ForResponseWidth(bits)
	if err != nil {
		return nil, fmt.Errorf("core: verifier pipeline unavailable: %w", err)
	}
	return &VerifierPipeline{
		src:    src,
		sketch: ecc.NewSketch(code),
		net:    obfuscate.MustNew(bits),
	}, nil
}

// MustNewVerifierPipeline is NewVerifierPipeline that panics on error.
func MustNewVerifierPipeline(em *Emulator) *VerifierPipeline {
	v, err := NewVerifierPipeline(em)
	if err != nil {
		panic(err)
	}
	return v
}

// Recover reconstructs z for the challenge seed from the helper data the
// prover produced. It fails if the helper data implies an error pattern the
// sketch cannot attribute (which, with maximum-likelihood recovery, only
// happens on malformed input lengths).
func (v *VerifierPipeline) Recover(seed uint64, helpers []uint64) ([]uint8, error) {
	if len(helpers) != obfuscate.ResponsesPerOutput {
		return nil, fmt.Errorf("core: %d helper words, want %d", len(helpers), obfuscate.ResponsesPerOutput)
	}
	responses := make([][]uint8, len(helpers))
	corrected := 0
	for j := range helpers {
		ref, err := v.src.ReferenceResponse(seed, j)
		if err != nil {
			return nil, fmt.Errorf("core: reference %d: %w", j, err)
		}
		y, n, err := v.sketch.Recover(ref, helpers[j])
		if err != nil {
			return nil, fmt.Errorf("core: helper %d: %w", j, err)
		}
		corrected += n
		responses[j] = y
	}
	eccRecoveries.Add(uint64(len(helpers)))
	eccCorrectedBits.Add(uint64(corrected))
	return v.net.Apply(responses)
}
