package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pufatt/internal/delay"
	"pufatt/internal/netlist"
	"pufatt/internal/rng"
)

func TestParseEvalEngine(t *testing.T) {
	cases := []struct {
		in   string
		want EvalEngine
	}{
		{"gate", EngineGate},
		{"bitslice", EngineBitslice},
		{"linear", EngineLinear},
	}
	for _, c := range cases {
		got, err := ParseEvalEngine(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseEvalEngine(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if got.String() != c.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), c.in)
		}
	}
	if _, err := ParseEvalEngine("simd"); err == nil {
		t.Error("ParseEvalEngine accepted an unknown engine name")
	}
}

func TestEvalEngineSelection(t *testing.T) {
	prev := DefaultEvalEngine()
	defer SetDefaultEvalEngine(prev)

	dev := twinDevice(t, 301)
	if got := dev.EvalEngine(); got != prev {
		t.Fatalf("fresh device engine %v, want package default %v", got, prev)
	}
	SetDefaultEvalEngine(EngineGate)
	if got := dev.EvalEngine(); got != EngineGate {
		t.Fatalf("device did not follow package default: %v", got)
	}
	dev.SetEvalEngine(EngineLinear)
	if got := dev.EvalEngine(); got != EngineLinear {
		t.Fatalf("per-device override lost: %v", got)
	}
	dev.SetEvalEngine(EngineDefault)
	if got := dev.EvalEngine(); got != EngineGate {
		t.Fatalf("EngineDefault did not resolve to package default: %v", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("SetDefaultEvalEngine(EngineDefault) did not panic")
		}
	}()
	SetDefaultEvalEngine(EngineDefault)
}

// engineScenario prepares one device state the bitsliced engine must
// reproduce exactly: architecture variants and every physics mutation that
// reaches the delay tables or the arbiter deltas.
type engineScenario struct {
	name string
	cfg  func() Config
	prep func(dev *Device)
}

func engineScenarios() []engineScenario {
	return []engineScenario{
		{"rca-fused", testConfig, nil},
		{"rca-no-carry", func() Config {
			cfg := testConfig()
			cfg.UseCarry = false
			return cfg
		}, nil},
		{"cla-generic", func() Config {
			cfg := testConfig()
			cfg.Adder = netlist.AdderCLA
			return cfg
		}, nil},
		{"corner-and-skew", testConfig, func(dev *Device) {
			dev.SetConditions(delay.Conditions{VddScale: 0.90, TempC: 120})
			skew := make([]float64, dev.Design().ResponseBits())
			for i := range skew {
				skew[i] = float64(i%5) - 2
			}
			dev.SetExtraSkewPs(skew)
		}},
		{"epoch-3", testConfig, func(dev *Device) { dev.SetEpoch(3) }},
		{"aged", testConfig, func(dev *Device) { dev.Age(5000, 0.5) }},
	}
}

// TestBitsliceMatchesGateAllModes is the cross-engine equivalence contract:
// for every device state and worker count, the bitsliced engine's raw,
// noiseless and majority-voted response matrices are byte-identical to the
// scalar gate-level engine's. Twin devices share seed and chip ID, and both
// run the modes in the same order, so their batch noise epochs stay aligned.
func TestBitsliceMatchesGateAllModes(t *testing.T) {
	workerCounts := []int{1, 4, 16}
	for _, sc := range engineScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			for _, workers := range workerCounts {
				mk := func(engine EvalEngine) *Device {
					dev := MustNewDevice(MustNewDesign(sc.cfg()), rng.New(303), 0)
					if sc.prep != nil {
						sc.prep(dev)
					}
					dev.SetEvalEngine(engine)
					return dev
				}
				gate := mk(EngineGate)
				sliced := mk(EngineBitslice)
				// 130 challenges: two full 64-lane blocks plus a short tail
				// block, so tail-lane masking is always exercised.
				ch := batchChallenges(gate.Design(), 130, 304)
				run := func(dev *Device) [][][]uint8 {
					return [][][]uint8{
						dev.RawResponses(ch, workers),
						dev.NoiselessResponses(ch, workers),
						dev.MajorityResponses(ch, 5, workers),
					}
				}
				want, got := run(gate), run(sliced)
				modes := []string{"raw", "noiseless", "majority5"}
				for m := range want {
					for k := range want[m] {
						if !bytes.Equal(want[m][k], got[m][k]) {
							t.Fatalf("%s workers=%d row %d: bitslice %v, gate %v",
								modes[m], workers, k, got[m][k], want[m][k])
						}
					}
				}
			}
		})
	}
}

// TestBitsliceDeterministicAcrossWorkers pins the worker-count determinism
// contract on the bitsliced path specifically: identical output matrices at
// 1, 4 and 16 workers (16 > blocks forces the worker clamp).
func TestBitsliceDeterministicAcrossWorkers(t *testing.T) {
	var ref [][]uint8
	for i, workers := range []int{1, 4, 16} {
		dev := twinDevice(t, 305)
		dev.SetEvalEngine(EngineBitslice)
		ch := batchChallenges(dev.Design(), 200, 306)
		got := dev.RawResponses(ch, workers)
		if i == 0 {
			ref = got
			continue
		}
		for k := range ref {
			if !bytes.Equal(ref[k], got[k]) {
				t.Fatalf("workers=%d row %d differs: %v vs %v", workers, k, got[k], ref[k])
			}
		}
	}
}

// dumpMismatchCorpus writes one JSONL record per disagreeing (challenge, bit)
// to an artifact file and returns its path. PUFATT_ARTIFACTS overrides the
// directory (default: the test's temp dir, kept only for the run).
func dumpMismatchCorpus(t *testing.T, name string, records []map[string]any) string {
	t.Helper()
	dir := os.Getenv("PUFATT_ARTIFACTS")
	if dir == "" {
		dir = t.TempDir()
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("mismatch corpus: %v", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			t.Fatalf("mismatch corpus: %v", err)
		}
	}
	return path
}

// TestLinearModelAgreement fits the linear-delay fast model and gates its
// holdout sign-agreement with the gate-level engine. On failure it dumps the
// full mismatch corpus (challenge, bit, both deltas) for offline triage.
func TestLinearModelAgreement(t *testing.T) {
	const minAgreement = 0.90
	dev := twinDevice(t, 307)
	model, err := FitLinearModel(dev, DefaultLinearModelConfig())
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	if a := model.Agreement(); a < minAgreement {
		t.Errorf("holdout agreement %.4f below tolerance %.2f", a, minAgreement)
	}
	per := model.PerBitAgreement()
	if len(per) != dev.Design().ResponseBits() {
		t.Fatalf("per-bit agreement has %d entries, want %d", len(per), dev.Design().ResponseBits())
	}

	// Engine-level agreement on fresh challenges: noiseless responses through
	// EngineLinear vs EngineGate.
	gate := twinDevice(t, 307)
	linear := twinDevice(t, 307)
	gate.SetEvalEngine(EngineGate)
	linear.SetEvalEngine(EngineLinear)
	const n = 2000
	ch := batchChallenges(gate.Design(), n, 308)
	want := gate.NoiselessResponses(ch, 2)
	got := linear.NoiselessResponses(ch, 2)
	bits := gate.Design().ResponseBits()
	agree := 0
	var mismatches []map[string]any
	for k := range ch {
		for i := 0; i < bits; i++ {
			if want[k][i] == got[k][i] {
				agree++
			} else {
				mismatches = append(mismatches, map[string]any{
					"challenge": fmt.Sprintf("%x", ch[k]),
					"bit":       i,
					"gate":      want[k][i],
					"linear":    got[k][i],
				})
			}
		}
	}
	frac := float64(agree) / float64(n*bits)
	if frac < minAgreement {
		path := dumpMismatchCorpus(t, "linear-mismatch.jsonl", mismatches)
		t.Errorf("engine-level agreement %.4f below tolerance %.2f; %d mismatches dumped to %s",
			frac, minAgreement, len(mismatches), path)
	}
}

// TestLinearModelRefitsOnPhysicsChange: aging, reconfiguration epochs, corner
// moves and skew injection all invalidate a fitted model; the engine must
// refit rather than serve stale weights. Detection: after each mutation the
// linear engine must still track the (re-measured) gate-level engine at the
// fit-time agreement level — a stale fit would collapse toward coin-flipping.
func TestLinearModelRefitsOnPhysicsChange(t *testing.T) {
	mutations := []struct {
		name string
		prep func(dev *Device)
	}{
		{"age", func(dev *Device) { dev.Age(8000, 1.0) }},
		{"epoch", func(dev *Device) { dev.SetEpoch(2) }},
		{"corner", func(dev *Device) { dev.SetConditions(delay.Conditions{VddScale: 0.85, TempC: 125}) }},
		{"skew", func(dev *Device) {
			skew := make([]float64, dev.Design().ResponseBits())
			for i := range skew {
				skew[i] = 40 * float64(1-2*(i&1))
			}
			dev.SetExtraSkewPs(skew)
		}},
	}
	for _, mu := range mutations {
		t.Run(mu.name, func(t *testing.T) {
			gate := twinDevice(t, 309)
			linear := twinDevice(t, 309)
			gate.SetEvalEngine(EngineGate)
			linear.SetEvalEngine(EngineLinear)
			ch := batchChallenges(gate.Design(), 600, 310)
			// Prime a fit at the fresh state, then mutate both twins.
			linear.NoiselessResponses(ch[:1], 1)
			gate.NoiselessResponses(ch[:1], 1)
			mu.prep(gate)
			mu.prep(linear)
			want := gate.NoiselessResponses(ch, 2)
			got := linear.NoiselessResponses(ch, 2)
			bits := gate.Design().ResponseBits()
			agree := 0
			for k := range ch {
				for i := 0; i < bits; i++ {
					if want[k][i] == got[k][i] {
						agree++
					}
				}
			}
			frac := float64(agree) / float64(len(ch)*bits)
			if frac < 0.85 {
				t.Errorf("post-%s agreement %.4f: linear engine served a stale fit", mu.name, frac)
			}
		})
	}
}

// TestLinearEngineDeterministic: the linear path honours the same
// worker-count determinism contract as the gate-level engines.
func TestLinearEngineDeterministic(t *testing.T) {
	var ref [][]uint8
	for i, workers := range []int{1, 4, 16} {
		dev := twinDevice(t, 311)
		dev.SetEvalEngine(EngineLinear)
		ch := batchChallenges(dev.Design(), 150, 312)
		got := dev.RawResponses(ch, workers)
		if i == 0 {
			ref = got
			continue
		}
		for k := range ref {
			if !bytes.Equal(ref[k], got[k]) {
				t.Fatalf("workers=%d row %d differs", workers, k)
			}
		}
	}
}
