package core

import (
	"math"
	"testing"

	"pufatt/internal/delay"
	"pufatt/internal/rng"
	"pufatt/internal/stats"
)

// testConfig returns a small, fast design for unit tests (the calibrated
// 32-bit DefaultConfig is exercised by the experiment tests and benches).
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Width = 16
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Width: 1},
		{Width: 65},
		{Width: 16, JitterPs: -1},
		{Width: 16, LayoutSkewPs: -1},
	}
	for i, cfg := range bad {
		if _, err := NewDesign(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDesignDefaults(t *testing.T) {
	d := MustNewDesign(Config{Width: 16})
	cfg := d.Config()
	if cfg.Tech == (delay.Params{}) {
		t.Error("technology defaults not applied")
	}
	if cfg.Variation.SigmaTotal == 0 {
		t.Error("variation defaults not applied")
	}
	if d.ResponseBits() != 16 || d.ChallengeBits() != 32 {
		t.Errorf("widths: resp %d chal %d", d.ResponseBits(), d.ChallengeBits())
	}
}

func TestDesignSkewDeterministicPerSeed(t *testing.T) {
	a := MustNewDesign(testConfig()).SkewPs()
	b := MustNewDesign(testConfig()).SkewPs()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same design seed produced different skew")
		}
	}
	cfg := testConfig()
	cfg.DesignSeed++
	c := MustNewDesign(cfg).SkewPs()
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different design seeds produced identical skew")
	}
}

func TestExpandChallengeProperties(t *testing.T) {
	d := MustNewDesign(testConfig())
	c0 := d.ExpandChallenge(42, 0)
	if len(c0) != 32 {
		t.Fatalf("challenge length %d", len(c0))
	}
	same := d.ExpandChallenge(42, 0)
	for i := range c0 {
		if c0[i] != same[i] {
			t.Fatal("expansion not deterministic")
		}
	}
	c1 := d.ExpandChallenge(42, 1)
	other := d.ExpandChallenge(43, 0)
	if stats.HammingDistance(c0, c1) == 0 || stats.HammingDistance(c0, other) == 0 {
		t.Error("expansion does not separate indices/seeds")
	}
}

func TestChallengeFromOperands(t *testing.T) {
	d := MustNewDesign(testConfig())
	ch := d.ChallengeFromOperands(0x8001, 0x0003)
	if ch[0] != 1 || ch[15] != 1 || ch[1] != 0 {
		t.Error("operand A bits misplaced")
	}
	if ch[16] != 1 || ch[17] != 1 || ch[18] != 0 {
		t.Error("operand B bits misplaced")
	}
}

func TestDeviceManufacturingDeterminism(t *testing.T) {
	d := MustNewDesign(testConfig())
	devA := MustNewDevice(d, rng.New(5), 7)
	devB := MustNewDevice(d, rng.New(5), 7)
	ch := d.ExpandChallenge(1, 0)
	a := devA.NoiselessResponse(ch)
	b := devB.NoiselessResponse(ch)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("identical chips gave different noiseless responses")
		}
	}
}

func TestNoiselessResponseIsStable(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(5), 0)
	ch := d.ExpandChallenge(9, 0)
	a := dev.NoiselessResponse(ch)
	for k := 0; k < 10; k++ {
		b := dev.NoiselessResponse(ch)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("noiseless response changed between calls")
			}
		}
	}
}

func TestRawResponseIsNoisy(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(5), 0)
	src := rng.New(6)
	var hd stats.Summary
	for k := 0; k < 300; k++ {
		ch := d.ExpandChallenge(src.Uint64(), 0)
		a := dev.RawResponseCopy(ch)
		b := dev.RawResponse(ch)
		hd.Add(float64(stats.HammingDistance(a, b)))
	}
	frac := hd.Mean() / 16
	if frac < 0.02 || frac > 0.3 {
		t.Errorf("intra-chip noise fraction %v outside the plausible band", frac)
	}
}

func TestDifferentChipsRespondDifferently(t *testing.T) {
	d := MustNewDesign(testConfig())
	master := rng.New(5)
	devA := MustNewDevice(d, master, 0)
	devB := MustNewDevice(d, master, 1)
	src := rng.New(7)
	var hd stats.Summary
	for k := 0; k < 300; k++ {
		ch := d.ExpandChallenge(src.Uint64(), 0)
		hd.Add(float64(stats.HammingDistance(
			devA.NoiselessResponse(ch), devB.NoiselessResponse(ch))))
	}
	frac := hd.Mean() / 16
	if frac < 0.15 || frac > 0.55 {
		t.Errorf("inter-chip fraction %v outside the plausible band", frac)
	}
}

func TestMajorityResponseReducesNoise(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(5), 0)
	src := rng.New(8)
	var raw, voted stats.Summary
	for k := 0; k < 200; k++ {
		ch := d.ExpandChallenge(src.Uint64(), 0)
		ref := dev.NoiselessResponse(ch)
		raw.Add(float64(stats.HammingDistance(ref, dev.RawResponseCopy(ch))))
		voted.Add(float64(stats.HammingDistance(ref, dev.MajorityResponse(ch, 7))))
	}
	if voted.Mean() >= raw.Mean() {
		t.Errorf("majority voting did not reduce noise: raw %v, voted %v", raw.Mean(), voted.Mean())
	}
}

func TestMajorityResponsePanicsOnEvenVotes(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(5), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on even votes")
		}
	}()
	dev.MajorityResponse(d.ExpandChallenge(1, 0), 4)
}

func TestEmulatorMatchesNoiselessDevice(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(5), 3)
	em := dev.Emulator()
	if em.ChipID() != 3 {
		t.Errorf("emulator chip id %d", em.ChipID())
	}
	src := rng.New(9)
	for k := 0; k < 300; k++ {
		ch := d.ExpandChallenge(src.Uint64(), 0)
		want := dev.NoiselessResponse(ch)
		got := em.Respond(ch)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("emulator diverges from device at challenge %d bit %d", k, i)
			}
		}
	}
}

func TestEmulatorOfOtherChipDiverges(t *testing.T) {
	d := MustNewDesign(testConfig())
	master := rng.New(5)
	devA := MustNewDevice(d, master, 0)
	devB := MustNewDevice(d, master, 1)
	emB := devB.Emulator()
	src := rng.New(10)
	diverged := false
	for k := 0; k < 100 && !diverged; k++ {
		ch := d.ExpandChallenge(src.Uint64(), 0)
		want := devA.NoiselessResponse(ch)
		got := emB.Respond(ch)
		for i := range want {
			if got[i] != want[i] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Error("emulator of chip B perfectly predicts chip A — unclonability broken")
	}
}

func TestConditionsChangeDelaysButMostlyNotResponses(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(5), 0)
	ch := d.ExpandChallenge(11, 0)
	nominal := append([]uint8(nil), dev.NoiselessResponse(ch)...)
	nominalCP := dev.CriticalPathPs()

	dev.SetConditions(delay.Conditions{VddScale: 0.9, TempC: 120})
	slowCP := dev.CriticalPathPs()
	if slowCP <= nominalCP {
		t.Errorf("critical path at slow corner (%v) not longer than nominal (%v)", slowCP, nominalCP)
	}
	src := rng.New(12)
	var hd stats.Summary
	for k := 0; k < 300; k++ {
		c := d.ExpandChallenge(src.Uint64(), 0)
		dev.SetConditions(delay.Nominal())
		ref := append([]uint8(nil), dev.NoiselessResponse(c)...)
		dev.SetConditions(delay.Conditions{VddScale: 0.9, TempC: 120})
		hd.Add(float64(stats.HammingDistance(ref, dev.NoiselessResponse(c))))
	}
	// Corners flip only borderline bits; the paper's robustness claim.
	if frac := hd.Mean() / 16; frac > 0.25 {
		t.Errorf("corner flipped %v of bits noiselessly; PUF not robust", frac)
	}
	_ = nominal
}

func TestClockedResponseAtGenerousClockMatchesRaw(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(5), 0)
	ch := d.ExpandChallenge(13, 0)
	minCycle := dev.MinReliableCyclePs(ch, 20)
	resp, valid := dev.ClockedResponse(ch, minCycle+1, 20)
	if valid != d.ResponseBits() {
		t.Fatalf("only %d/%d bits valid at a sufficient clock", valid, d.ResponseBits())
	}
	ref := dev.NoiselessResponse(ch)
	// With jitter the borderline bits may differ; majority of bits must
	// agree.
	if hd := stats.HammingDistance(resp, ref); hd > d.ResponseBits()/3 {
		t.Errorf("clocked response differs from reference by %d bits", hd)
	}
}

func TestClockedResponseDegradesWhenOverclocked(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(5), 0)
	src := rng.New(14)
	const setup = 20.0
	var validSlow, validFast int
	trials := 100
	for k := 0; k < trials; k++ {
		ch := d.ExpandChallenge(src.Uint64(), 0)
		full := dev.MinReliableCyclePs(ch, setup) + 0.01
		_, v1 := dev.ClockedResponse(ch, full, setup)
		validSlow += v1
		_, v2 := dev.ClockedResponse(ch, full*0.6, setup)
		validFast += v2
	}
	if validSlow != trials*d.ResponseBits() {
		t.Errorf("valid bits at full cycle: %d, want all %d", validSlow, trials*d.ResponseBits())
	}
	if validFast >= validSlow {
		t.Error("overclocking did not corrupt any response bits")
	}
}

func TestCriticalPathBoundsArrivals(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(5), 0)
	cp := dev.CriticalPathPs()
	src := rng.New(15)
	for k := 0; k < 100; k++ {
		ch := d.ExpandChallenge(src.Uint64(), 0)
		if m := dev.MinReliableCyclePs(ch, 0); m > cp+math.Abs(maxSkew(d))+1e-9 {
			t.Fatalf("arrival %v exceeds static critical path %v", m, cp)
		}
	}
}

func maxSkew(d *Design) float64 {
	m := 0.0
	for _, s := range d.SkewPs() {
		if math.Abs(s) > m {
			m = math.Abs(s)
		}
	}
	return m
}

func TestEventDrivenSettleNearLevelizedBound(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(5), 0)
	ch := d.ChallengeFromOperands(0xFFFF, 0x0001) // full carry chain
	settle := dev.EventDrivenSettleTime(ch)
	cp := dev.CriticalPathPs()
	if settle <= 0 {
		t.Fatal("event-driven settle time not positive")
	}
	if settle > cp+1e-9 {
		t.Errorf("event-driven settle %v exceeds static bound %v", settle, cp)
	}
}

func TestQueriesCounter(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(5), 0)
	ch := d.ExpandChallenge(1, 0)
	dev.RawResponse(ch)
	dev.NoiselessResponse(ch)
	dev.MajorityResponse(ch, 3)
	if got := dev.Queries(); got != 5 {
		t.Errorf("query counter = %d, want 5", got)
	}
}

func TestPipelineRoundTrip(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(5), 0)
	p := MustNewPipeline(dev)
	v := MustNewVerifierPipeline(dev.Emulator())
	src := rng.New(16)
	mismatches := 0
	const trials = 60
	for k := 0; k < trials; k++ {
		seed := src.Uint64()
		out, err := p.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Z) != 16 || len(out.Helpers) != 8 {
			t.Fatalf("output shape: z %d bits, %d helpers", len(out.Z), len(out.Helpers))
		}
		got, err := v.Recover(seed, out.Helpers)
		if err != nil {
			t.Fatal(err)
		}
		if stats.HammingDistance(got, out.Z) != 0 {
			mismatches++
		}
	}
	if mismatches > trials/20 {
		t.Errorf("verifier failed to recover z in %d/%d queries", mismatches, trials)
	}
}

func TestPipelineRepeatedInvocationsEachVerify(t *testing.T) {
	// Reverse fuzzy extractor semantics: z is a per-invocation value (the
	// raw measurement differs run to run), but every invocation's z is
	// exactly recoverable by the verifier from that invocation's helper
	// data. This is the property the attestation protocol relies on.
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(5), 0)
	p := MustNewPipeline(dev)
	v := MustNewVerifierPipeline(dev.Emulator())
	failures := 0
	const trials = 30
	for k := 0; k < trials; k++ {
		for rep := 0; rep < 2; rep++ {
			out, err := p.Query(uint64(k))
			if err != nil {
				t.Fatal(err)
			}
			got, err := v.Recover(uint64(k), out.Helpers)
			if err != nil {
				t.Fatal(err)
			}
			if stats.HammingDistance(got, out.Z) != 0 {
				failures++
			}
		}
	}
	if failures > trials/10 {
		t.Errorf("%d/%d invocations failed verification", failures, 2*trials)
	}
}

func TestVerifierPipelineRejectsWrongHelperCount(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(5), 0)
	v := MustNewVerifierPipeline(dev.Emulator())
	if _, err := v.Recover(1, make([]uint64, 3)); err == nil {
		t.Error("wrong helper count accepted")
	}
}

func TestPipelineRejectsUnsupportedWidth(t *testing.T) {
	cfg := testConfig()
	cfg.Width = 20
	d := MustNewDesign(cfg)
	dev := MustNewDevice(d, rng.New(5), 0)
	if _, err := NewPipeline(dev); err == nil {
		t.Error("pipeline accepted a width with no sketch instance")
	}
}

func TestUseCarryAddsResponseBit(t *testing.T) {
	cfg := testConfig()
	cfg.UseCarry = true
	d := MustNewDesign(cfg)
	if d.ResponseBits() != 17 {
		t.Errorf("ResponseBits = %d, want 17", d.ResponseBits())
	}
	dev := MustNewDevice(d, rng.New(5), 0)
	if got := len(dev.NoiselessResponse(d.ExpandChallenge(1, 0))); got != 17 {
		t.Errorf("response length %d, want 17", got)
	}
}

func TestOutputZWord(t *testing.T) {
	o := Output{Z: []uint8{1, 0, 1}}
	if o.ZWord() != 0b101 {
		t.Errorf("ZWord = %#b", o.ZWord())
	}
}

func TestEmulatorPanicsOnMismatchedModel(t *testing.T) {
	d16 := MustNewDesign(testConfig())
	cfg32 := DefaultConfig()
	d32 := MustNewDesign(cfg32)
	dev := MustNewDevice(d32, rng.New(5), 0)
	m := dev.ExportModel()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched model/design")
		}
	}()
	NewEmulator(d16, m)
}

func TestArrivalDeltasExposePhysics(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(5), 0)
	ch := d.ExpandChallenge(1, 0)
	deltas := dev.ArrivalDeltas(ch)
	if len(deltas) != 16 {
		t.Fatalf("deltas length %d", len(deltas))
	}
	resp := dev.NoiselessResponse(ch)
	for i, dl := range deltas {
		want := uint8(0)
		if dl > 0 {
			want = 1
		}
		if resp[i] != want {
			t.Errorf("bit %d inconsistent with delta %v", i, dl)
		}
	}
}

func TestArbitraryWidthDevices(t *testing.T) {
	// The paper: "depending on the operand bit-length of the adders in the
	// ALU, we can easily build ALU PUFs with an arbitrary number of
	// response bits". Raw-PUF operation must work at any width in [2,64];
	// only the ECC pipeline is width-restricted.
	for _, width := range []int{2, 8, 24, 48, 64} {
		cfg := DefaultConfig()
		cfg.Width = width
		d := MustNewDesign(cfg)
		dev := MustNewDevice(d, rng.New(uint64(width)), 0)
		ch := d.ExpandChallenge(1, 0)
		resp := dev.RawResponseCopy(ch)
		if len(resp) != width {
			t.Errorf("width %d: response has %d bits", width, len(resp))
		}
		em := dev.Emulator()
		want := dev.NoiselessResponse(ch)
		got := em.Respond(ch)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("width %d: emulator diverges", width)
				break
			}
		}
	}
}

func TestUseCarryEmulation(t *testing.T) {
	cfg := testConfig()
	cfg.UseCarry = true
	d := MustNewDesign(cfg)
	dev := MustNewDevice(d, rng.New(300), 0)
	em := dev.Emulator()
	src := rng.New(301)
	for k := 0; k < 50; k++ {
		ch := d.ExpandChallenge(src.Uint64(), 0)
		want := dev.NoiselessResponse(ch)
		got := em.Respond(ch)
		if len(got) != 17 {
			t.Fatalf("carry response width %d", len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatal("carry-bit emulation diverges")
			}
		}
	}
}
