package core

import (
	"fmt"

	"pufatt/internal/netlist"
)

// PUF epoch reconfiguration, after the remotely reconfigured arbiter PUF of
// Spenke, Breithaupt and Plaga (PAPERS.md): a reconfiguration re-randomizes
// the delay instance, yielding a fresh CRP space. The CRP-database
// verification path burns one single-use seed per attestation, so a
// device's authentication lifetime is bounded by the enrollment effort;
// reconfiguring under a new *epoch* lifts that bound — the verifier
// re-enrolls the reconfigured instance and the old epoch's (possibly
// modeled, possibly exhausted) CRP space becomes worthless to an attacker.
//
// The model: each epoch e > 0 overlays an additional per-gate threshold
// offset drawn from a dedicated substream of the device's root seed, with
// the same standard deviation as the manufacturing process variation.
// Epoch 0 is the manufactured instance, bit-exact with pre-epoch behaviour.
// Because the overlay derives deterministically from (root seed, epoch),
// any epoch can be revisited for audit: SetEpoch(old) reproduces the
// retired instance exactly, including its enrollment references.

// SetEpoch reconfigures the device's delay instance to the given epoch,
// rebuilding the delay tables. Epoch 0 restores the manufactured instance.
// The same (device, epoch) pair always yields the same instance, in either
// direction — switching back to an earlier epoch reproduces it exactly.
func (dev *Device) SetEpoch(epoch uint32) {
	if epoch == dev.epoch && (epoch != 0 || dev.epochVth == nil) {
		return
	}
	dev.epoch = epoch
	if epoch == 0 {
		dev.epochVth = nil
	} else {
		dev.epochVth = dev.epochOffsets(epoch)
	}
	dev.reloadTables()
}

// Epoch returns the device's current reconfiguration epoch.
func (dev *Device) Epoch() uint32 { return dev.epoch }

// Reconfigure advances the device to the next epoch and returns it — the
// prover-side half of an epoch cutover.
func (dev *Device) Reconfigure() uint32 {
	dev.SetEpoch(dev.epoch + 1)
	return dev.epoch
}

// epochOffsets draws the per-gate Vth overlay for epoch e (> 0). The
// overlay has the full process-variation sigma, so the reconfigured
// instance's race outcomes decorrelate from every other epoch's — the
// fresh-CRP-space property the re-enrollment pipeline relies on. Inputs
// and constants carry no delay and are skipped, as in aging.
func (dev *Device) epochOffsets(e uint32) []float64 {
	if e == 0 {
		panic(fmt.Sprintf("core: epochOffsets(%d)", e))
	}
	nl := dev.design.datapath.Net
	src := dev.epochRoot.SubN("epoch", int(e))
	out := make([]float64, len(nl.Gates))
	sigma := dev.chip.Config().SigmaTotal
	for g := range nl.Gates {
		switch nl.Gates[g].Kind {
		case netlist.Input, netlist.Const0, netlist.Const1:
			continue
		}
		out[g] = src.NormMS(0, sigma)
	}
	return out
}
