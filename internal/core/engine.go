package core

import (
	"fmt"
	"sync/atomic"
)

// EvalEngine selects the physics engine behind the batch-evaluation layer
// (BatchEvaluator and the Device.RawResponses/NoiselessResponses/
// MajorityResponses family). Everything above that layer — experiments,
// attacks, enrollment, re-enrollment — inherits the selection without
// caller changes.
type EvalEngine uint8

const (
	// EngineDefault resolves to the package-wide default (see
	// SetDefaultEvalEngine) at evaluation time.
	EngineDefault EvalEngine = iota
	// EngineGate is the scalar levelized gate-level engine (sim.Engine),
	// one challenge per pass.
	EngineGate
	// EngineBitslice is the 64-lane bitsliced gate-level engine
	// (sim.SlicedEngine). Bit-identical to EngineGate — the equivalence
	// suite enforces it — and the default.
	EngineBitslice
	// EngineLinear is the additive linear-delay fast model (linear.go):
	// an approximation fitted and validated against the gate-level engine,
	// for workloads that trade exactness for throughput and footprint.
	EngineLinear
)

// String returns the flag spelling of the engine.
func (e EvalEngine) String() string {
	switch e {
	case EngineDefault:
		return "default"
	case EngineGate:
		return "gate"
	case EngineBitslice:
		return "bitslice"
	case EngineLinear:
		return "linear"
	}
	return fmt.Sprintf("EvalEngine(%d)", uint8(e))
}

// ParseEvalEngine maps a -engine flag value to an engine.
func ParseEvalEngine(s string) (EvalEngine, error) {
	switch s {
	case "gate":
		return EngineGate, nil
	case "bitslice":
		return EngineBitslice, nil
	case "linear":
		return EngineLinear, nil
	}
	return EngineDefault, fmt.Errorf("core: unknown eval engine %q (want gate, bitslice or linear)", s)
}

// defaultEngine holds the package-wide engine as a uint32 for atomic access
// (cmd flags set it once at startup; experiments read it per batch).
var defaultEngine atomic.Uint32

func init() { defaultEngine.Store(uint32(EngineBitslice)) }

// SetDefaultEvalEngine sets the engine used by every device that has no
// per-device override. e must be a concrete engine, not EngineDefault.
func SetDefaultEvalEngine(e EvalEngine) {
	if e == EngineDefault {
		panic("core: SetDefaultEvalEngine(EngineDefault)")
	}
	defaultEngine.Store(uint32(e))
}

// DefaultEvalEngine returns the package-wide default engine.
func DefaultEvalEngine() EvalEngine { return EvalEngine(defaultEngine.Load()) }

// SetEvalEngine overrides the engine for this device's batch evaluations.
// EngineDefault restores deference to the package default.
func (dev *Device) SetEvalEngine(e EvalEngine) { dev.evalEngine = e }

// EvalEngine returns the engine this device's batch evaluations will use,
// with EngineDefault already resolved.
func (dev *Device) EvalEngine() EvalEngine {
	if dev.evalEngine == EngineDefault {
		return DefaultEvalEngine()
	}
	return dev.evalEngine
}
