package core

import (
	"testing"

	"pufatt/internal/rng"
	"pufatt/internal/stats"
)

func TestAgingSlowsTheDevice(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(40), 0)
	before := dev.CriticalPathPs()
	dev.Age(5000, 1.0)
	after := dev.CriticalPathPs()
	if after <= before {
		t.Errorf("aging did not slow the critical path: %v -> %v", before, after)
	}
	// 5000 h of full stress at ~40 mV shift ≈ several percent slower.
	if after/before < 1.01 || after/before > 1.5 {
		t.Errorf("aging slowdown factor %.4f implausible", after/before)
	}
}

func TestAgingValidation(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(41), 0)
	for _, bad := range []func(){
		func() { dev.Age(-1, 0.5) },
		func() { dev.Age(10, -0.1) },
		func() { dev.Age(10, 1.1) },
		func() { dev.ReinforcementAge(-1, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on invalid aging call")
				}
			}()
			bad()
		}()
	}
}

func TestUniformAgingDriftsResponses(t *testing.T) {
	// Enroll, age for a simulated decade, and measure drift against the
	// stale reference: some bits must flip (the PUF aging threat), but the
	// device must not become a different chip (drift << inter-chip HD).
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(42), 0)
	src := rng.New(43)
	seeds := make([]uint64, 400)
	refs := make([][]uint8, len(seeds))
	for k := range seeds {
		seeds[k] = src.Uint64()
		refs[k] = append([]uint8(nil), dev.NoiselessResponse(d.ExpandChallenge(seeds[k], 0))...)
	}
	dev.Age(87600, 0.5) // 10 years at 50 % duty
	var drift stats.Summary
	for k := range seeds {
		drift.Add(float64(stats.HammingDistance(refs[k], dev.NoiselessResponse(d.ExpandChallenge(seeds[k], 0)))))
	}
	frac := drift.Mean() / 16
	if frac == 0 {
		t.Error("a decade of wear flipped no bits; aging model inert")
	}
	if frac > 0.3 {
		t.Errorf("aging drift %.3f of bits — device unrecognisable", frac)
	}
}

func TestAgedDeviceReEnrollsCleanly(t *testing.T) {
	// After aging, a fresh model export must emulate the aged device.
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(44), 0)
	dev.Age(20000, 1.0)
	em := dev.Emulator()
	src := rng.New(45)
	for k := 0; k < 100; k++ {
		ch := d.ExpandChallenge(src.Uint64(), 0)
		want := dev.NoiselessResponse(ch)
		got := em.Respond(ch)
		for i := range want {
			if got[i] != want[i] {
				t.Fatal("re-enrolled emulator diverges from aged device")
			}
		}
	}
}

func TestReinforcementAgingImprovesReliability(t *testing.T) {
	// The [13] claim: directed aging hardens noisy bits. Measure the noisy
	// flip rate against a fresh enrollment before and after burn-in.
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(46), 0)
	flipRate := func() float64 {
		src := rng.New(47) // same challenge set for both measurements
		var hd stats.Summary
		for k := 0; k < 400; k++ {
			ch := d.ExpandChallenge(src.Uint64(), 0)
			ref := append([]uint8(nil), dev.NoiselessResponse(ch)...)
			for rep := 0; rep < 3; rep++ {
				hd.Add(float64(stats.HammingDistance(ref, dev.RawResponse(ch))))
			}
		}
		return hd.Mean() / 16
	}
	before := flipRate()
	dev.ReinforcementAge(2000, 200)
	after := flipRate()
	if after >= before {
		t.Errorf("directed aging did not improve reliability: %.4f -> %.4f", before, after)
	}
	t.Logf("noisy flip rate: %.4f -> %.4f", before, after)
}

func TestReinforcementAgingCostsSomeUniqueness(t *testing.T) {
	// The trade-off: burned-in bits are more reliable but more biased, so
	// inter-chip distance may drop. Document the magnitude; fail only if
	// uniqueness collapses below half its original value.
	d := MustNewDesign(testConfig())
	master := rng.New(48)
	devA := MustNewDevice(d, master, 0)
	devB := MustNewDevice(d, master, 1)
	inter := func() float64 {
		src := rng.New(49)
		var hd stats.Summary
		for k := 0; k < 300; k++ {
			ch := d.ExpandChallenge(src.Uint64(), 0)
			hd.Add(float64(stats.HammingDistance(devA.NoiselessResponse(ch), devB.NoiselessResponse(ch))))
		}
		return hd.Mean()
	}
	before := inter()
	devA.ReinforcementAge(2000, 200)
	devB.ReinforcementAge(2000, 200)
	after := inter()
	t.Logf("inter-chip HD: %.2f -> %.2f bits", before, after)
	if after < before/2 {
		t.Errorf("burn-in destroyed uniqueness: %.2f -> %.2f bits", before, after)
	}
}

func TestAgingVthAccessor(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(50), 0)
	if dev.AgingVth() != nil {
		t.Error("fresh device reports aging")
	}
	dev.Age(100, 1)
	v := dev.AgingVth()
	if v == nil {
		t.Fatal("no aging vector after Age")
	}
	positive := 0
	for _, s := range v {
		if s > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Error("no gate aged")
	}
}

func TestConeOf(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(51), 0)
	a0lsb, _ := d.Datapath().Pair(0)
	a0msb, _ := d.Datapath().Pair(15)
	lsbCone := dev.coneOf(a0lsb)
	msbCone := dev.coneOf(a0msb)
	if len(lsbCone) >= len(msbCone) {
		t.Errorf("MSB cone (%d gates) should exceed LSB cone (%d gates)", len(msbCone), len(lsbCone))
	}
	// Memoised: same slice back.
	again := dev.coneOf(a0msb)
	if &again[0] != &msbCone[0] {
		t.Error("cone not memoised")
	}
}
