package core

import (
	"fmt"
	"math"

	"pufatt/internal/delay"
	"pufatt/internal/rng"
	"pufatt/internal/sim"
)

// Linear-delay fast model: the additive stage-delay arbiter approximation in
// the Φ(C) parity-vector tradition of MUX/arbiter-PUF modeling (PAPERS.md).
//
// The exact physics of response bit i is the floating-mode arrival race of
// two ripple-carry sum nets, a piecewise-linear (min/max) function of the
// per-gate delays gated by the challenge. The fast model replaces it with a
// ridge-regressed linear form over per-stage challenge features
//
//	Δ̂_i(C) = w_0 + Σ_{j ∈ window(i)} w_a·±a_j + w_b·±b_j + w_g·±(a_j∧b_j) + w_p·±(a_j⊕b_j)
//
// in ±1 encoding, where window(i) is the last Window stages feeding bit i —
// carry influence on a sum bit decays geometrically with stage distance
// (each extra stage requires a longer propagate run), so a short window
// captures almost all of the variance. Crucially the model predicts the
// arrival *delta in picoseconds*, not the response bit: the batch layer adds
// per-item arbiter noise to Δ̂ exactly as it does to gate-level deltas, so
// noisy/voted evaluation and the determinism contracts work unchanged.
//
// The model is fitted on noiseless gate-level deltas from a deterministic
// challenge stream and validated on a held-out set at fit time; Agreement()
// reports the holdout sign-agreement with the gate-level engine. It is an
// approximation — see DESIGN.md for when it is (and is not) a valid
// substitute. Its value is footprint and setup cost: a few KB of weights
// evaluated in ~1k FLOPs, with no netlist or delay table, e.g. for fleet
// load synthesis and attack training-set generation at scale.

// LinearModelConfig parameterises FitLinearModel.
type LinearModelConfig struct {
	// TrainN is the number of fitting challenges; TestN the held-out
	// validation challenges.
	TrainN, TestN int
	// Window is how many trailing adder stages feed each response bit's
	// feature vector (clamped to the operand width).
	Window int
	// Ridge is the relative L2 regularisation (scaled by TrainN).
	Ridge float64
	// MinAgreement, when > 0, makes the fit fail if holdout sign-agreement
	// with the gate-level engine falls below it.
	MinAgreement float64
}

// DefaultLinearModelConfig returns the enrollment-time defaults.
func DefaultLinearModelConfig() LinearModelConfig {
	return LinearModelConfig{TrainN: 2048, TestN: 512, Window: 8, Ridge: 1e-3}
}

// LinearModel is a fitted linear-delay fast model for one device at one
// physics state (corner, epoch, aging). Fit via FitLinearModel.
type LinearModel struct {
	width  int
	window int
	// weights[i] = [bias, then 4 weights per stage of bit i's window];
	// start[i] is the first stage of that window.
	weights [][]float64
	start   []int
	// agreement is holdout sign-agreement vs the gate-level engine, overall
	// and per bit.
	agreement float64
	perBit    []float64
	// Staleness fingerprint: the device physics the fit saw.
	physGen uint64
	cond    delay.Conditions
}

// pmTable maps a challenge bit to its ±1 feature encoding.
var pmTable = [2]float64{-1, 1}

// Agreement returns the holdout sign-agreement with the gate-level engine
// measured at fit time (1 = every validation bit matched).
func (m *LinearModel) Agreement() float64 { return m.agreement }

// PerBitAgreement returns the holdout agreement per response bit.
func (m *LinearModel) PerBitAgreement() []float64 {
	return append([]float64(nil), m.perBit...)
}

// Window returns the fitted per-bit stage window.
func (m *LinearModel) Window() int { return m.window }

// DeltasInto predicts the per-bit arrival deltas (ps) for one challenge into
// dst (len ≥ response bits).
func (m *LinearModel) DeltasInto(challenge []uint8, dst []float64) {
	for i := range m.weights {
		w := m.weights[i]
		s := w[0]
		j := m.start[i]
		for p := 1; p < len(w); p += 4 {
			a := challenge[j] & 1
			b := challenge[m.width+j] & 1
			s += w[p]*pmTable[a] + w[p+1]*pmTable[b] +
				w[p+2]*pmTable[a&b] + w[p+3]*pmTable[a^b]
			j++
		}
		dst[i] = s
	}
}

// stale reports whether the device's physics moved since the fit.
func (m *LinearModel) stale(dev *Device) bool {
	return m.physGen != dev.physGen || m.cond != dev.cond
}

// linearModel returns the device's fitted fast model, refitting when the
// physics (corner, epoch, aging, skew) changed since the last fit. The fit
// is deterministic, so the model — like everything the batch layer does —
// replays bit-exactly.
func (dev *Device) linearModel() *LinearModel {
	if dev.linear == nil || dev.linear.stale(dev) {
		m, err := FitLinearModel(dev, DefaultLinearModelConfig())
		if err != nil {
			panic(fmt.Sprintf("core: linear-model fit failed: %v", err))
		}
		dev.linear = m
	}
	return dev.linear
}

// FitLinearModel fits the linear-delay fast model to the device's current
// physics: ridge least squares of noiseless gate-level arrival deltas on
// windowed ±1 parity features, then holdout validation. Challenges come from
// a stream derived from (design seed, chip ID), so the same device state
// always yields the same model. The fit queries the engine directly and does
// not count against Device.Queries.
func FitLinearModel(dev *Device, cfg LinearModelConfig) (*LinearModel, error) {
	width := dev.design.cfg.Width
	bits := dev.design.ResponseBits()
	win := cfg.Window
	if win < 1 || win > width {
		win = width
	}
	if cfg.TrainN < 1 || cfg.TestN < 1 {
		return nil, fmt.Errorf("core: linear-model fit with TrainN=%d TestN=%d", cfg.TrainN, cfg.TestN)
	}
	dim := 1 + 4*width

	src := rng.New(dev.design.cfg.DesignSeed).SubN("linear-model/fit", dev.chip.ID())
	eng := sim.NewEngine(dev.design.datapath.Net, dev.tables[dev.cond])

	// Accumulate the full Gram matrix and per-bit cross vectors in one pass;
	// each bit's normal equations are then a window-indexed submatrix.
	gram := make([]float64, dim*dim)
	cross := make([]float64, bits*dim)
	feats := make([]float64, dim)
	deltas := make([]float64, bits)
	ch := make([]uint8, 2*width)
	for t := 0; t < cfg.TrainN; t++ {
		src.Bits(ch)
		_, arr := eng.Run(ch)
		for i := 0; i < bits; i++ {
			deltas[i] = dev.arrivalDelta(arr, i)
		}
		linearFeatures(ch, width, feats)
		for j := 0; j < dim; j++ {
			fj := feats[j]
			row := gram[j*dim:]
			for k := j; k < dim; k++ {
				row[k] += fj * feats[k]
			}
			cr := cross[j:]
			for i := 0; i < bits; i++ {
				cr[i*dim] += fj * deltas[i]
			}
		}
	}
	for j := 0; j < dim; j++ {
		for k := j + 1; k < dim; k++ {
			gram[k*dim+j] = gram[j*dim+k]
		}
	}

	model := &LinearModel{
		width:   width,
		window:  win,
		weights: make([][]float64, bits),
		start:   make([]int, bits),
		physGen: dev.physGen,
		cond:    dev.cond,
	}
	lambda := cfg.Ridge * float64(cfg.TrainN)
	for i := 0; i < bits; i++ {
		// Sum bit i races through stages ≤ i; the carry bit (i == width)
		// through the last stages. Either way: the window trailing stage
		// min(i, width-1).
		last := i
		if last > width-1 {
			last = width - 1
		}
		startStage := last - win + 1
		if startStage < 0 {
			startStage = 0
		}
		model.start[i] = startStage
		idx := make([]int, 0, 1+4*(last-startStage+1))
		idx = append(idx, 0)
		for j := startStage; j <= last; j++ {
			idx = append(idx, 1+4*j, 2+4*j, 3+4*j, 4+4*j)
		}
		m := len(idx)
		a := make([]float64, m*m)
		b := make([]float64, m)
		for r, jr := range idx {
			for c, jc := range idx {
				a[r*m+c] = gram[jr*dim+jc]
			}
			a[r*m+r] += lambda
			b[r] = cross[i*dim+jr]
		}
		w, ok := solveCholesky(a, b, m)
		if !ok {
			return nil, fmt.Errorf("core: linear-model normal equations singular for bit %d", i)
		}
		model.weights[i] = w
	}

	// Holdout validation against the gate-level engine.
	correct := make([]int, bits)
	pred := make([]float64, bits)
	for t := 0; t < cfg.TestN; t++ {
		src.Bits(ch)
		_, arr := eng.Run(ch)
		model.DeltasInto(ch, pred)
		for i := 0; i < bits; i++ {
			if (dev.arrivalDelta(arr, i) > 0) == (pred[i] > 0) {
				correct[i]++
			}
		}
	}
	model.perBit = make([]float64, bits)
	sum := 0.0
	for i, c := range correct {
		model.perBit[i] = float64(c) / float64(cfg.TestN)
		sum += model.perBit[i]
	}
	model.agreement = sum / float64(bits)
	if cfg.MinAgreement > 0 && model.agreement < cfg.MinAgreement {
		return nil, fmt.Errorf("core: linear-model holdout agreement %.4f below required %.4f",
			model.agreement, cfg.MinAgreement)
	}
	return model, nil
}

// linearFeatures fills the full ±1 feature vector: bias then, per stage j,
// ±a_j, ±b_j, ±(a_j∧b_j), ±(a_j⊕b_j).
func linearFeatures(ch []uint8, width int, out []float64) {
	out[0] = 1
	for j := 0; j < width; j++ {
		a := ch[j] & 1
		b := ch[width+j] & 1
		out[1+4*j] = pmTable[a]
		out[2+4*j] = pmTable[b]
		out[3+4*j] = pmTable[a&b]
		out[4+4*j] = pmTable[a^b]
	}
}

// solveCholesky solves the symmetric positive-definite system a·x = b
// (row-major n×n, destroyed) by Cholesky decomposition.
func solveCholesky(a, b []float64, n int) ([]float64, bool) {
	// Decompose a = L·Lᵀ in the lower triangle.
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, false
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= a[i*n+k] * a[j*n+k]
			}
			a[i*n+j] = s / d
		}
	}
	// Forward then back substitution.
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i*n+k] * x[k]
		}
		x[i] = s / a[i*n+i]
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= a[k*n+i] * x[k]
		}
		x[i] = s / a[i*n+i]
	}
	return x, true
}
