package core

import (
	"bytes"
	"testing"

	"pufatt/internal/rng"
)

func epochTestDevice(t *testing.T) *Device {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Width = 16
	return MustNewDevice(MustNewDesign(cfg), rng.New(11), 3)
}

// sampleResponses collects noiseless responses over a few expanded
// challenges — enough surface to distinguish delay instances.
func sampleResponses(dev *Device, n int) [][]uint8 {
	out := make([][]uint8, n)
	for i := range out {
		ch := dev.Design().ExpandChallenge(uint64(i*7+1), i%2)
		out[i] = append([]uint8(nil), dev.NoiselessResponse(ch)...)
	}
	return out
}

// TestEpochZeroIsIdentity: epoch 0 is the manufacturing configuration —
// reconfiguring away and back must restore the delay instance bit-exactly
// (the audit guarantee: every epoch is reproducible forever).
func TestEpochZeroIsIdentity(t *testing.T) {
	dev := epochTestDevice(t)
	if dev.Epoch() != 0 {
		t.Fatalf("fresh device epoch = %d, want 0", dev.Epoch())
	}
	before := sampleResponses(dev, 8)
	dev.SetEpoch(3)
	dev.SetEpoch(0)
	after := sampleResponses(dev, 8)
	for i := range before {
		if !bytes.Equal(before[i], after[i]) {
			t.Fatalf("response %d changed after round-trip through epoch 3", i)
		}
	}
}

// TestEpochsAreDeterministic: the same epoch on two devices built from the
// same manufacturing seed yields identical responses — the property the
// verifier's facility twin relies on for re-enrollment.
func TestEpochsAreDeterministic(t *testing.T) {
	a := epochTestDevice(t)
	b := epochTestDevice(t)
	for _, e := range []uint32{1, 5, 1} { // revisit 1: old epochs stay reproducible
		a.SetEpoch(e)
		b.SetEpoch(e)
		ra, rb := sampleResponses(a, 6), sampleResponses(b, 6)
		for i := range ra {
			if !bytes.Equal(ra[i], rb[i]) {
				t.Fatalf("epoch %d response %d differs between identical devices", e, i)
			}
		}
	}
}

// TestEpochsChangeTheDelayInstance: reconfiguration must actually
// re-randomize — distinct epochs must disagree on a healthy fraction of
// response bits, or the fresh CRP space is an illusion.
func TestEpochsChangeTheDelayInstance(t *testing.T) {
	dev := epochTestDevice(t)
	r0 := sampleResponses(dev, 16)
	dev.SetEpoch(1)
	r1 := sampleResponses(dev, 16)
	dev.SetEpoch(2)
	r2 := sampleResponses(dev, 16)

	frac := func(a, b [][]uint8) float64 {
		diff, total := 0, 0
		for i := range a {
			for j := range a[i] {
				total++
				if a[i][j] != b[i][j] {
					diff++
				}
			}
		}
		return float64(diff) / float64(total)
	}
	if f := frac(r0, r1); f < 0.1 {
		t.Fatalf("epoch 0 vs 1 differ on %.1f%% of bits, want a re-randomized instance", f*100)
	}
	if f := frac(r1, r2); f < 0.1 {
		t.Fatalf("epoch 1 vs 2 differ on %.1f%% of bits, want a re-randomized instance", f*100)
	}
}

// TestReconfigureAdvancesEpoch: Reconfigure is SetEpoch(current+1).
func TestReconfigureAdvancesEpoch(t *testing.T) {
	dev := epochTestDevice(t)
	if e := dev.Reconfigure(); e != 1 || dev.Epoch() != 1 {
		t.Fatalf("first Reconfigure -> %d (device %d), want 1", e, dev.Epoch())
	}
	if e := dev.Reconfigure(); e != 2 {
		t.Fatalf("second Reconfigure -> %d, want 2", e)
	}
}

// TestEpochComposesWithAging: the epoch overlay and aging drift are
// independent additive Vth terms — reconfiguring must not erase
// accumulated wear, and wearing must not leak across epochs' audit
// reproducibility (a fresh device at the same epoch differs from the aged
// one).
func TestEpochComposesWithAging(t *testing.T) {
	aged := epochTestDevice(t)
	aged.SetEpoch(1)
	preAge := sampleResponses(aged, 8)
	aged.Age(20000, 1.0)
	postAge := sampleResponses(aged, 8)
	same := true
	for i := range preAge {
		if !bytes.Equal(preAge[i], postAge[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("20000h of aging changed nothing at epoch 1; overlays are not composing")
	}
	fresh := epochTestDevice(t)
	fresh.SetEpoch(1)
	freshResp := sampleResponses(fresh, 8)
	for i := range freshResp {
		if !bytes.Equal(freshResp[i], preAge[i]) {
			t.Fatalf("un-aged epoch-1 response %d is not reproducible", i)
		}
	}
}

// TestEpochEmulatorFollowsEpoch: a model exported at epoch e verifies
// epoch-e responses — the verifier-side half of reconfiguration.
func TestEpochEmulatorFollowsEpoch(t *testing.T) {
	dev := epochTestDevice(t)
	dev.SetEpoch(2)
	em := dev.Emulator()
	ch := dev.Design().ExpandChallenge(99, 1)
	want := dev.NoiselessResponse(ch)
	if got := em.Respond(ch); !bytes.Equal(got, want) {
		t.Fatal("emulator exported at epoch 2 disagrees with the device")
	}
}
