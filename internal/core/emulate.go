package core

import (
	"fmt"

	"pufatt/internal/delay"
	"pufatt/internal/sim"
)

// Model is the emulation model H of one device: the per-gate nominal delay
// table plus the design skew. Whoever holds it can predict the device's
// noiseless responses — it is the verifier's secret (Section 2: "a
// protected interface to read out the gate-level delays ... only accessible
// by a trusted entity").
type Model struct {
	Width    int
	UseCarry bool
	ChipID   int
	Table    delay.Table
	SkewPs   []float64
}

// Emulator implements PUF.Emulate(): noiseless nominal-corner evaluation of
// a device from its model H. It is deterministic; an Emulator is not safe
// for concurrent use (it owns a simulation engine).
type Emulator struct {
	design *Design
	model  *Model
	engine *sim.Engine
	inBuf  []uint8
}

// NewEmulator builds an emulator for a device of the given design from its
// exported model.
func NewEmulator(d *Design, m *Model) *Emulator {
	if m.Width != d.cfg.Width || m.UseCarry != d.cfg.UseCarry {
		panic(fmt.Sprintf("core: model (width %d, carry %v) does not match design (width %d, carry %v)",
			m.Width, m.UseCarry, d.cfg.Width, d.cfg.UseCarry))
	}
	if len(m.Table.Ps) != len(d.datapath.Net.Gates) {
		panic(fmt.Sprintf("core: model delay table has %d entries, netlist has %d gates",
			len(m.Table.Ps), len(d.datapath.Net.Gates)))
	}
	return &Emulator{
		design: d,
		model:  m,
		engine: sim.NewEngine(d.datapath.Net, m.Table),
		inBuf:  make([]uint8, 2*d.cfg.Width),
	}
}

// Design returns the emulator's design.
func (e *Emulator) Design() *Design { return e.design }

// ChipID returns the chip the model was extracted from.
func (e *Emulator) ChipID() int { return e.model.ChipID }

// Respond returns the emulated noiseless response to the challenge.
func (e *Emulator) Respond(challenge []uint8) []uint8 {
	if len(challenge) != 2*e.design.cfg.Width {
		panic(fmt.Sprintf("core: challenge of %d bits, want %d", len(challenge), 2*e.design.cfg.Width))
	}
	copy(e.inBuf, challenge)
	_, arr := e.engine.Run(e.inBuf)
	out := make([]uint8, e.design.ResponseBits())
	for i := range out {
		a0, a1 := e.design.datapath.Pair(i)
		if arr[a1]+e.model.SkewPs[i]-arr[a0] > 0 {
			out[i] = 1
		}
	}
	return out
}
