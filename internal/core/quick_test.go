package core

import (
	"testing"
	"testing/quick"

	"pufatt/internal/rng"
)

// Property-based tests of the core invariants (testing/quick).

func TestPropEmulatorAlwaysMatchesDevice(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(200), 0)
	em := dev.Emulator()
	f := func(a, b uint16) bool {
		ch := d.ChallengeFromOperands(uint64(a), uint64(b))
		want := dev.NoiselessResponse(ch)
		got := em.Respond(ch)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropChallengeLayoutRoundTrip(t *testing.T) {
	d := MustNewDesign(testConfig())
	f := func(a, b uint16) bool {
		ch := d.ChallengeFromOperands(uint64(a), uint64(b))
		var ra, rb uint64
		for i := 0; i < 16; i++ {
			ra |= uint64(ch[i]) << uint(i)
			rb |= uint64(ch[16+i]) << uint(i)
		}
		return ra == uint64(a) && rb == uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropExpandOperandsUses32Bits(t *testing.T) {
	d := MustNewDesign(testConfig())
	f := func(seed uint64, j uint8) bool {
		jj := int(j % 8)
		a1, b1 := d.ExpandOperands(seed, jj)
		a2, b2 := d.ExpandOperands(seed&0xffffffff, jj)
		return a1 == a2 && b1 == b2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropExpandChallengeConsistentWithOperands(t *testing.T) {
	d := MustNewDesign(testConfig())
	f := func(seed uint32, j uint8) bool {
		jj := int(j % 8)
		a, b := d.ExpandOperands(uint64(seed), jj)
		ch := d.ExpandChallenge(uint64(seed), jj)
		want := d.ChallengeFromOperands(uint64(a), uint64(b))
		for i := range want {
			if ch[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropClockedResponseAllValidAtGenerousClock(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(201), 0)
	slack := dev.CriticalPathPs() * 10
	f := func(a, b uint16) bool {
		ch := d.ChallengeFromOperands(uint64(a), uint64(b))
		_, valid := dev.ClockedResponse(ch, slack, 20)
		return valid == d.ResponseBits()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropArrivalDeltasFinite(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(202), 0)
	f := func(a, b uint16) bool {
		for _, dl := range dev.ArrivalDeltas(d.ChallengeFromOperands(uint64(a), uint64(b))) {
			if dl != dl || dl > 1e6 || dl < -1e6 { // NaN or absurd
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropPipelineHelpersAlwaysRecoverable(t *testing.T) {
	d := MustNewDesign(testConfig())
	dev := MustNewDevice(d, rng.New(203), 0)
	pl := MustNewPipeline(dev)
	vp := MustNewVerifierPipeline(dev.Emulator())
	mismatches := 0
	f := func(seed uint32) bool {
		out, err := pl.Query(uint64(seed))
		if err != nil {
			return false
		}
		z, err := vp.Recover(uint64(seed), out.Helpers)
		if err != nil {
			return false
		}
		for i := range z {
			if z[i] != out.Z[i] {
				mismatches++ // rare 16-bit RM(1,4) misrecoveries allowed below
				return mismatches <= 2
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
