package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pufatt/internal/delay"
	"pufatt/internal/rng"
	"pufatt/internal/sim"
)

// This file is the parallel batch-evaluation layer: every paper-scale
// campaign (Figure 3/4, the FNR Monte-Carlo, ML-attack training sets) is a
// large batch of independent challenge evaluations on one or more devices,
// and the levelized engine is cheaply cloneable, so the batch fans out
// across a bounded worker pool.
//
// Determinism is the design constraint. A Device's sequential RawResponse
// draws arbiter noise from one rolling stream, which a parallel schedule
// would consume in a racy order. The batch evaluator instead derives an
// independent noise stream per challenge — seeded by (device noise seed,
// batch epoch, item index) via rng.SubSeedN — so the result matrix is
// bit-identical for every worker count, including workers=1, and replays
// exactly for a given device history regardless of GOMAXPROCS.

// batchChunk is how many consecutive items a worker claims per dispatch:
// large enough to amortise the atomic fetch-add, small enough to balance
// tail latency on uneven netlists.
const batchChunk = 32

// BatchEvaluator fans challenge batches of one device across a bounded
// worker pool of cloned simulation engines. Create one per device (or use
// the Device.RawResponses family, which manages one lazily); it must not be
// used concurrently with other evaluations on the same device, but its own
// workers coordinate internally.
//
// Which physics engine runs underneath — scalar gate-level, 64-lane
// bitsliced gate-level (the default), or the linear-delay fast model — is
// selected per batch via Device.EvalEngine (see engine.go). The two
// gate-level engines are bit-identical; all three honour the same
// determinism contract (per-item noise streams, any worker count).
type BatchEvaluator struct {
	dev   *Device
	pool  *sim.Pool       // scalar engines (EngineGate)
	spool *sim.SlicedPool // bitsliced engines (EngineBitslice), lazy
}

// NewBatchEvaluator returns a batch evaluator over the device.
func NewBatchEvaluator(dev *Device) *BatchEvaluator {
	return &BatchEvaluator{
		dev:  dev,
		pool: sim.NewPool(dev.design.datapath.Net, dev.tables[dev.cond]),
	}
}

// batcher returns the device's lazily created batch evaluator.
func (dev *Device) batcher() *BatchEvaluator {
	if dev.batch == nil {
		dev.batch = NewBatchEvaluator(dev)
	}
	return dev.batch
}

// RawResponses measures raw responses (with per-evaluation arbiter noise)
// for every challenge, fanning the batch across workers goroutines
// (0 = GOMAXPROCS). Row k of the result is the response to challenges[k];
// rows are caller-owned fresh storage, carved from one backing allocation.
// Results are bit-identical for every worker count.
func (dev *Device) RawResponses(challenges [][]uint8, workers int) [][]uint8 {
	return dev.batcher().RawResponses(challenges, nil, workers)
}

// NoiselessResponses is RawResponses without arbiter noise: the idealised
// expected responses at the current corner, evaluated in parallel.
func (dev *Device) NoiselessResponses(challenges [][]uint8, workers int) [][]uint8 {
	return dev.batcher().NoiselessResponses(challenges, nil, workers)
}

// MajorityResponses measures votes-fold temporal-majority responses for
// every challenge in parallel. votes must be odd.
func (dev *Device) MajorityResponses(challenges [][]uint8, votes, workers int) [][]uint8 {
	return dev.batcher().MajorityResponses(challenges, nil, votes, workers)
}

// RawResponses evaluates the batch with arbiter noise. dst, when non-nil,
// must have len(challenges) rows of ResponseBits bytes and is reused (the
// allocation-free steady state for blocked sweeps); pass nil to allocate.
func (be *BatchEvaluator) RawResponses(challenges, dst [][]uint8, workers int) [][]uint8 {
	return be.run(challenges, dst, workers, 1, true)
}

// NoiselessResponses evaluates the batch without arbiter noise.
func (be *BatchEvaluator) NoiselessResponses(challenges, dst [][]uint8, workers int) [][]uint8 {
	return be.run(challenges, dst, workers, 1, false)
}

// MajorityResponses evaluates the batch with votes-fold temporal majority
// voting per challenge (votes odd).
func (be *BatchEvaluator) MajorityResponses(challenges, dst [][]uint8, votes, workers int) [][]uint8 {
	if votes < 1 || votes%2 == 0 {
		panic(fmt.Sprintf("core: majority votes %d must be odd and positive", votes))
	}
	return be.run(challenges, dst, workers, votes, true)
}

// ResponseMatrix allocates a dst matrix for reuse across batch calls: rows
// response-width slices carved from one backing array.
func (be *BatchEvaluator) ResponseMatrix(rows int) [][]uint8 {
	return responseMatrix(rows, be.dev.design.ResponseBits())
}

func responseMatrix(rows, bits int) [][]uint8 {
	backing := make([]uint8, rows*bits)
	m := make([][]uint8, rows)
	for k := range m {
		m[k] = backing[k*bits : (k+1)*bits : (k+1)*bits]
	}
	return m
}

// ChallengeMatrix allocates a challenge matrix (rows × ChallengeBits) from
// one backing array, for batch producers to fill via ExpandChallengeInto.
func ChallengeMatrix(d *Design, rows int) [][]uint8 {
	bits := d.ChallengeBits()
	backing := make([]uint8, rows*bits)
	m := make([][]uint8, rows)
	for k := range m {
		m[k] = backing[k*bits : (k+1)*bits : (k+1)*bits]
	}
	return m
}

// run is the shared fan-out. Each item k is evaluated with a noise stream
// derived from (device noise seed, batch epoch, k): independent of the
// worker that runs it and of how many workers exist.
func (be *BatchEvaluator) run(challenges, dst [][]uint8, workers, votes int, noisy bool) [][]uint8 {
	dev := be.dev
	bits := dev.design.ResponseBits()
	chBits := 2 * dev.design.cfg.Width
	for k, ch := range challenges {
		if len(ch) != chBits {
			panic(fmt.Sprintf("core: challenge %d of %d bits, want %d", k, len(ch), chBits))
		}
	}
	if dst == nil {
		dst = responseMatrix(len(challenges), bits)
	} else if len(dst) < len(challenges) {
		panic(fmt.Sprintf("core: dst of %d rows for %d challenges", len(dst), len(challenges)))
	}
	dst = dst[:len(challenges)]
	epoch := dev.batchEpochs
	dev.batchEpochs++
	if len(challenges) == 0 {
		return dst
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(challenges) {
		workers = len(challenges)
	}

	// Per-batch constants, all read-only under the workers.
	engine := dev.EvalEngine()
	tab := dev.tables[dev.cond]
	jitter := 0.0
	if noisy {
		jitter = dev.design.cfg.JitterPs * dev.jitterScale
	}
	noiseBase := dev.noise.Sub(fmt.Sprintf("batch/%d", epoch))

	start := time.Now()
	switch engine {
	case EngineBitslice:
		be.runSliced(challenges, dst, workers, votes, noisy, jitter, noiseBase, tab)
	case EngineLinear:
		be.runLinear(challenges, dst, workers, votes, noisy, jitter, noiseBase)
	default:
		be.runGate(challenges, dst, workers, votes, noisy, jitter, noiseBase, tab)
	}

	dev.queries += uint64(len(challenges) * votes)
	batchBatches.Inc()
	batchItems.Add(uint64(len(challenges)))
	if elapsed := time.Since(start).Seconds(); elapsed > 0 && engine != EngineLinear {
		// Effective lane-evals: one gate-level pass per item either way —
		// the bitsliced engine just evaluates up to 64 items per block, so
		// items × gates stays the effective-work numerator across engines.
		gates := float64(len(challenges)) * float64(be.pool.GatesPerRun())
		batchGateEvalRate.Set(gates / elapsed)
	}
	return dst
}

// runGate is the scalar gate-level fan-out: chunks of whole items across
// cloned scalar engines.
func (be *BatchEvaluator) runGate(challenges, dst [][]uint8, workers, votes int, noisy bool, jitter float64, noiseBase *rng.Source, tab delay.Table) {
	dev := be.dev
	bits := dev.design.ResponseBits()
	be.pool.SetDelays(tab)
	var next atomic.Int64
	work := func(eng *sim.Engine) {
		var noise rng.Source
		counts := make([]int, bits)
		deltas := make([]float64, bits)
		nbuf := make([]float64, bits)
		for {
			lo := int(next.Add(batchChunk)) - batchChunk
			if lo >= len(challenges) {
				return
			}
			hi := lo + batchChunk
			if hi > len(challenges) {
				hi = len(challenges)
			}
			for k := lo; k < hi; k++ {
				if noisy {
					noise.Reinit(noiseBase.SubSeedN("item", k))
				}
				evalOne(dev, eng, challenges[k], dst[k], counts, deltas, nbuf, &noise, jitter, votes, noisy)
			}
		}
	}
	if workers == 1 {
		// Sequential fast path: same item→noise mapping, no goroutines.
		eng := be.pool.Get()
		work(eng)
		be.pool.Put(eng)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				batchWorkersBusy.Add(1)
				defer batchWorkersBusy.Add(-1)
				eng := be.pool.Get()
				defer be.pool.Put(eng)
				work(eng)
			}()
		}
		wg.Wait()
	}
}

// slicedPool returns the lazily created bitsliced engine pool.
func (be *BatchEvaluator) slicedPool() *sim.SlicedPool {
	if be.spool == nil {
		be.spool = sim.NewSlicedPool(be.dev.design.datapath.Net, be.dev.tables[be.dev.cond])
	}
	return be.spool
}

// runSliced is the bitsliced fan-out: workers claim whole 64-lane blocks,
// transpose the block's challenges into lane words, run one levelized pass
// for all lanes, extract per-lane arbiter deltas, then draw each item's
// noise from its own stream in exactly the scalar order — so the result is
// bit-identical to runGate at every worker count.
func (be *BatchEvaluator) runSliced(challenges, dst [][]uint8, workers, votes int, noisy bool, jitter float64, noiseBase *rng.Source, tab delay.Table) {
	dev := be.dev
	bits := dev.design.ResponseBits()
	nIn := 2 * dev.design.cfg.Width
	blocks := (len(challenges) + sim.Lanes - 1) / sim.Lanes
	if workers > blocks {
		workers = blocks
	}
	pool := be.slicedPool()
	pool.SetDelays(tab)
	var next atomic.Int64
	work := func(eng *sim.SlicedEngine) {
		var noise rng.Source
		counts := make([]int, bits)
		inWords := make([]uint64, nIn)
		deltas := make([]float64, bits*sim.Lanes)
		nbuf := make([]float64, bits)
		var bcast [2][sim.Lanes]float64
		for {
			blk := int(next.Add(1)) - 1
			if blk >= blocks {
				return
			}
			lo := blk * sim.Lanes
			lanes := len(challenges) - lo
			if lanes > sim.Lanes {
				lanes = sim.Lanes
			}
			// Transpose: bit l of input word j is challenge lo+l's bit j.
			// Lane-outer order reads each challenge row sequentially and
			// keeps the word vector L1-resident. Tail lanes of a short
			// block stay zero (computed, never read).
			for j := range inWords {
				inWords[j] = 0
			}
			for l := 0; l < lanes; l++ {
				row := challenges[lo+l][:nIn]
				for j, bit := range row {
					inWords[j] |= uint64(bit&1) << l
				}
			}
			eng.RunBlock(inWords, lanes)
			extractLaneDeltas(dev, eng, deltas, &bcast)
			for l := 0; l < lanes; l++ {
				k := lo + l
				if noisy {
					noise.Reinit(noiseBase.SubSeedN("item", k))
				}
				respondFromDeltas(dst[k], counts, deltas, nbuf, sim.Lanes, l, &noise, jitter, votes, noisy)
			}
		}
	}
	if workers == 1 {
		eng := pool.Get()
		work(eng)
		pool.Put(eng)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				batchWorkersBusy.Add(1)
				defer batchWorkersBusy.Add(-1)
				eng := pool.Get()
				defer pool.Put(eng)
				work(eng)
			}()
		}
		wg.Wait()
	}
	bitsliceLanesBusy.Set(float64(len(challenges)) / float64(blocks))
}

// extractLaneDeltas mirrors Device.arrivalDelta per lane, in the same
// floating-point operation order (arr1 + skew − arr0, then += extra), so the
// deltas are bit-identical to the scalar path. Pair nets whose arrival is
// challenge-independent (a sum fed by the constant carry-in) are broadcast
// into scratch rows.
func extractLaneDeltas(dev *Device, eng *sim.SlicedEngine, deltas []float64, bcast *[2][sim.Lanes]float64) {
	bits := dev.design.ResponseBits()
	for i := 0; i < bits; i++ {
		a0, a1 := dev.design.datapath.Pair(i)
		skew := dev.design.skewPs[i]
		l0 := eng.ArrivalLanes(a0)
		if l0 == nil {
			c := eng.ConstArrival(a0)
			for l := range bcast[0] {
				bcast[0][l] = c
			}
			l0 = bcast[0][:]
		}
		l1 := eng.ArrivalLanes(a1)
		if l1 == nil {
			c := eng.ConstArrival(a1)
			for l := range bcast[1] {
				bcast[1][l] = c
			}
			l1 = bcast[1][:]
		}
		row := deltas[i*sim.Lanes : i*sim.Lanes+sim.Lanes]
		if dev.extraSkewPs != nil {
			extra := dev.extraSkewPs[i]
			for l := 0; l < sim.Lanes; l++ {
				d := l1[l] + skew - l0[l]
				d += extra
				row[l] = d
			}
		} else {
			for l := 0; l < sim.Lanes; l++ {
				row[l] = l1[l] + skew - l0[l]
			}
		}
	}
}

// runLinear evaluates the batch through the device's fitted linear-delay
// fast model (refitting lazily if the physics moved): no gate-level engine,
// just a windowed dot product per bit plus the standard noise pipeline.
func (be *BatchEvaluator) runLinear(challenges, dst [][]uint8, workers, votes int, noisy bool, jitter float64, noiseBase *rng.Source) {
	dev := be.dev
	bits := dev.design.ResponseBits()
	model := dev.linearModel()
	var next atomic.Int64
	work := func() {
		var noise rng.Source
		counts := make([]int, bits)
		deltas := make([]float64, bits)
		nbuf := make([]float64, bits)
		for {
			lo := int(next.Add(batchChunk)) - batchChunk
			if lo >= len(challenges) {
				return
			}
			hi := lo + batchChunk
			if hi > len(challenges) {
				hi = len(challenges)
			}
			for k := lo; k < hi; k++ {
				model.DeltasInto(challenges[k], deltas)
				if noisy {
					noise.Reinit(noiseBase.SubSeedN("item", k))
				}
				respondFromDeltas(dst[k], counts, deltas, nbuf, 1, 0, &noise, jitter, votes, noisy)
			}
		}
	}
	if workers == 1 {
		work()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				batchWorkersBusy.Add(1)
				defer batchWorkersBusy.Add(-1)
				work()
			}()
		}
		wg.Wait()
	}
}

// evalOne measures one challenge into out using the worker-local engine,
// vote counter, delta scratch, and (already reinitialised) noise stream. It
// is the batch analogue of Device.RawResponse/NoiselessResponse/
// MajorityResponse and must stay in lockstep with them physically: same
// arrival deltas, same jitter model, same majority rule. It runs one
// levelized pass, extracts the per-bit deltas, and hands them to the shared
// noise/threshold stage — the same stage the bitsliced and linear paths
// feed, which is what makes all engines' noisy outputs comparable
// term-for-term.
func evalOne(dev *Device, eng *sim.Engine, challenge, out []uint8, counts []int, deltas, nbuf []float64, noise *rng.Source, jitter float64, votes int, noisy bool) {
	_, arr := eng.Run(challenge)
	for i := range deltas {
		deltas[i] = dev.arrivalDelta(arr, i)
	}
	respondFromDeltas(out, counts, deltas, nbuf, 1, 0, noise, jitter, votes, noisy)
}

// respondFromDeltas turns precomputed arrival deltas into response bits:
// per-bit jitter draws (in ascending bit order, the scalar draw order) and
// thresholding, or votes-fold majority with noise redrawn per vote. Bit i's
// delta is deltas[i*stride+lane]: stride 1 for scalar layouts, sim.Lanes for
// lane-major bitsliced blocks. The engine pass behind the deltas is
// deterministic, so one pass serves every vote — only the arbiter noise
// differs (the sequential MajorityResponse re-runs the engine per vote; the
// physics is identical, this just skips votes−1 redundant passes).
//
// The jitter draws are buffered into nbuf (len = response bits) before the
// threshold pass: the draw order is unchanged, but the Norm calls run in a
// loop with nothing else live, and the add/compare loop runs call-free —
// measurably faster than interleaving a function call between every
// comparison on the batch hot path.
func respondFromDeltas(out []uint8, counts []int, deltas, nbuf []float64, stride, lane int, noise *rng.Source, jitter float64, votes int, noisy bool) {
	if noisy && jitter > 0 && votes == 1 {
		for i := range nbuf {
			nbuf[i] = noise.NormMS(0, jitter)
		}
		idx := lane
		for i := range out {
			var bit uint8
			if deltas[idx]+nbuf[i] > 0 {
				bit = 1
			}
			out[i] = bit
			idx += stride
		}
		return
	}
	if !noisy || jitter <= 0 {
		// Noiseless, or noisy with zero jitter: no draws happen, every vote
		// sees the same delta, so majority collapses to one threshold pass.
		idx := lane
		for i := range out {
			var bit uint8
			if deltas[idx] > 0 {
				bit = 1
			}
			out[i] = bit
			idx += stride
		}
		return
	}
	for i := range counts {
		counts[i] = 0
	}
	for v := 0; v < votes; v++ {
		for i := range nbuf {
			nbuf[i] = noise.NormMS(0, jitter)
		}
		idx := lane
		for i := range counts {
			if deltas[idx]+nbuf[i] > 0 {
				counts[i]++
			}
			idx += stride
		}
	}
	for i, c := range counts {
		var bit uint8
		if 2*c > votes {
			bit = 1
		}
		out[i] = bit
	}
}
