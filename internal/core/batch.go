package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pufatt/internal/rng"
	"pufatt/internal/sim"
)

// This file is the parallel batch-evaluation layer: every paper-scale
// campaign (Figure 3/4, the FNR Monte-Carlo, ML-attack training sets) is a
// large batch of independent challenge evaluations on one or more devices,
// and the levelized engine is cheaply cloneable, so the batch fans out
// across a bounded worker pool.
//
// Determinism is the design constraint. A Device's sequential RawResponse
// draws arbiter noise from one rolling stream, which a parallel schedule
// would consume in a racy order. The batch evaluator instead derives an
// independent noise stream per challenge — seeded by (device noise seed,
// batch epoch, item index) via rng.SubSeedN — so the result matrix is
// bit-identical for every worker count, including workers=1, and replays
// exactly for a given device history regardless of GOMAXPROCS.

// batchChunk is how many consecutive items a worker claims per dispatch:
// large enough to amortise the atomic fetch-add, small enough to balance
// tail latency on uneven netlists.
const batchChunk = 32

// BatchEvaluator fans challenge batches of one device across a bounded
// worker pool of cloned simulation engines. Create one per device (or use
// the Device.RawResponses family, which manages one lazily); it must not be
// used concurrently with other evaluations on the same device, but its own
// workers coordinate internally.
type BatchEvaluator struct {
	dev  *Device
	pool *sim.Pool
}

// NewBatchEvaluator returns a batch evaluator over the device.
func NewBatchEvaluator(dev *Device) *BatchEvaluator {
	return &BatchEvaluator{
		dev:  dev,
		pool: sim.NewPool(dev.design.datapath.Net, dev.tables[dev.cond]),
	}
}

// batcher returns the device's lazily created batch evaluator.
func (dev *Device) batcher() *BatchEvaluator {
	if dev.batch == nil {
		dev.batch = NewBatchEvaluator(dev)
	}
	return dev.batch
}

// RawResponses measures raw responses (with per-evaluation arbiter noise)
// for every challenge, fanning the batch across workers goroutines
// (0 = GOMAXPROCS). Row k of the result is the response to challenges[k];
// rows are caller-owned fresh storage, carved from one backing allocation.
// Results are bit-identical for every worker count.
func (dev *Device) RawResponses(challenges [][]uint8, workers int) [][]uint8 {
	return dev.batcher().RawResponses(challenges, nil, workers)
}

// NoiselessResponses is RawResponses without arbiter noise: the idealised
// expected responses at the current corner, evaluated in parallel.
func (dev *Device) NoiselessResponses(challenges [][]uint8, workers int) [][]uint8 {
	return dev.batcher().NoiselessResponses(challenges, nil, workers)
}

// MajorityResponses measures votes-fold temporal-majority responses for
// every challenge in parallel. votes must be odd.
func (dev *Device) MajorityResponses(challenges [][]uint8, votes, workers int) [][]uint8 {
	return dev.batcher().MajorityResponses(challenges, nil, votes, workers)
}

// RawResponses evaluates the batch with arbiter noise. dst, when non-nil,
// must have len(challenges) rows of ResponseBits bytes and is reused (the
// allocation-free steady state for blocked sweeps); pass nil to allocate.
func (be *BatchEvaluator) RawResponses(challenges, dst [][]uint8, workers int) [][]uint8 {
	return be.run(challenges, dst, workers, 1, true)
}

// NoiselessResponses evaluates the batch without arbiter noise.
func (be *BatchEvaluator) NoiselessResponses(challenges, dst [][]uint8, workers int) [][]uint8 {
	return be.run(challenges, dst, workers, 1, false)
}

// MajorityResponses evaluates the batch with votes-fold temporal majority
// voting per challenge (votes odd).
func (be *BatchEvaluator) MajorityResponses(challenges, dst [][]uint8, votes, workers int) [][]uint8 {
	if votes < 1 || votes%2 == 0 {
		panic(fmt.Sprintf("core: majority votes %d must be odd and positive", votes))
	}
	return be.run(challenges, dst, workers, votes, true)
}

// ResponseMatrix allocates a dst matrix for reuse across batch calls: rows
// response-width slices carved from one backing array.
func (be *BatchEvaluator) ResponseMatrix(rows int) [][]uint8 {
	return responseMatrix(rows, be.dev.design.ResponseBits())
}

func responseMatrix(rows, bits int) [][]uint8 {
	backing := make([]uint8, rows*bits)
	m := make([][]uint8, rows)
	for k := range m {
		m[k] = backing[k*bits : (k+1)*bits : (k+1)*bits]
	}
	return m
}

// ChallengeMatrix allocates a challenge matrix (rows × ChallengeBits) from
// one backing array, for batch producers to fill via ExpandChallengeInto.
func ChallengeMatrix(d *Design, rows int) [][]uint8 {
	bits := d.ChallengeBits()
	backing := make([]uint8, rows*bits)
	m := make([][]uint8, rows)
	for k := range m {
		m[k] = backing[k*bits : (k+1)*bits : (k+1)*bits]
	}
	return m
}

// run is the shared fan-out. Each item k is evaluated with a noise stream
// derived from (device noise seed, batch epoch, k): independent of the
// worker that runs it and of how many workers exist.
func (be *BatchEvaluator) run(challenges, dst [][]uint8, workers, votes int, noisy bool) [][]uint8 {
	dev := be.dev
	bits := dev.design.ResponseBits()
	chBits := 2 * dev.design.cfg.Width
	for k, ch := range challenges {
		if len(ch) != chBits {
			panic(fmt.Sprintf("core: challenge %d of %d bits, want %d", k, len(ch), chBits))
		}
	}
	if dst == nil {
		dst = responseMatrix(len(challenges), bits)
	} else if len(dst) < len(challenges) {
		panic(fmt.Sprintf("core: dst of %d rows for %d challenges", len(dst), len(challenges)))
	}
	dst = dst[:len(challenges)]
	epoch := dev.batchEpochs
	dev.batchEpochs++
	if len(challenges) == 0 {
		return dst
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(challenges) {
		workers = len(challenges)
	}

	// Per-batch constants, all read-only under the workers.
	tab := dev.tables[dev.cond]
	be.pool.SetDelays(tab)
	jitter := 0.0
	if noisy {
		jitter = dev.design.cfg.JitterPs * dev.jitterScale
	}
	noiseBase := dev.noise.Sub(fmt.Sprintf("batch/%d", epoch))

	start := time.Now()
	var next atomic.Int64
	work := func(eng *sim.Engine) {
		var noise rng.Source
		counts := make([]int, bits)
		for {
			lo := int(next.Add(batchChunk)) - batchChunk
			if lo >= len(challenges) {
				return
			}
			hi := lo + batchChunk
			if hi > len(challenges) {
				hi = len(challenges)
			}
			for k := lo; k < hi; k++ {
				if noisy {
					noise.Reinit(noiseBase.SubSeedN("item", k))
				}
				evalOne(dev, eng, challenges[k], dst[k], counts, &noise, jitter, votes, noisy)
			}
		}
	}
	if workers == 1 {
		// Sequential fast path: same item→noise mapping, no goroutines.
		eng := be.pool.Get()
		work(eng)
		be.pool.Put(eng)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				batchWorkersBusy.Add(1)
				defer batchWorkersBusy.Add(-1)
				eng := be.pool.Get()
				defer be.pool.Put(eng)
				work(eng)
			}()
		}
		wg.Wait()
	}

	dev.queries += uint64(len(challenges) * votes)
	batchBatches.Inc()
	batchItems.Add(uint64(len(challenges)))
	if elapsed := time.Since(start).Seconds(); elapsed > 0 {
		// One engine pass per item (votes share a deterministic pass).
		gates := float64(len(challenges)) * float64(be.pool.GatesPerRun())
		batchGateEvalRate.Set(gates / elapsed)
	}
	return dst
}

// evalOne measures one challenge into out using the worker-local engine,
// vote counter, and (already reinitialised) noise stream. It is the batch
// analogue of Device.RawResponse/NoiselessResponse/MajorityResponse and
// must stay in lockstep with them physically: same arrival deltas, same
// jitter model, same majority rule.
func evalOne(dev *Device, eng *sim.Engine, challenge, out []uint8, counts []int, noise *rng.Source, jitter float64, votes int, noisy bool) {
	if !noisy {
		_, arr := eng.Run(challenge)
		for i := range out {
			if dev.arrivalDelta(arr, i) > 0 {
				out[i] = 1
			} else {
				out[i] = 0
			}
		}
		return
	}
	if votes == 1 {
		_, arr := eng.Run(challenge)
		for i := range out {
			d := dev.arrivalDelta(arr, i)
			if jitter > 0 {
				d += noise.NormMS(0, jitter)
			}
			if d > 0 {
				out[i] = 1
			} else {
				out[i] = 0
			}
		}
		return
	}
	// The levelized engine is deterministic, so one Run serves every vote:
	// only the per-vote arbiter noise differs. (The sequential
	// MajorityResponse re-runs the engine per vote; the physics is
	// identical, this just skips votes-1 redundant passes.)
	_, arr := eng.Run(challenge)
	for i := range counts {
		counts[i] = 0
	}
	for v := 0; v < votes; v++ {
		for i := range counts {
			d := dev.arrivalDelta(arr, i)
			if jitter > 0 {
				d += noise.NormMS(0, jitter)
			}
			if d > 0 {
				counts[i]++
			}
		}
	}
	for i, c := range counts {
		if 2*c > votes {
			out[i] = 1
		} else {
			out[i] = 0
		}
	}
}
