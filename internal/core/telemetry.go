package core

import "pufatt/internal/telemetry"

// PUF-pipeline instruments. The ECC correction count is the reliability
// signal of the reverse fuzzy extractor: corrected bits per recovery track
// the device's raw bit-error rate, and a drift upward is aging or an
// environmental shift long before recoveries start failing outright.
var (
	pufQueries = telemetry.Default().Counter("puf_queries_total",
		"Prover-side PUF() invocations (eight raw responses each).")
	eccRecoveries = telemetry.Default().Counter("ecc_recoveries_total",
		"Verifier-side sketch recoveries performed.")
	eccCorrectedBits = telemetry.Default().Counter("ecc_corrected_bits_total",
		"Raw response bits corrected by the secure sketch during recovery.")
)

// Batch-evaluation instruments (batch.go). The gate-eval rate gauge is the
// headline throughput number of the parallel engine; workers-busy exposes
// fan-out saturation at a glance.
var (
	batchBatches = telemetry.Default().Counter("puf_batches_total",
		"Batch evaluations dispatched through the parallel engine.")
	batchItems = telemetry.Default().Counter("puf_batch_items_total",
		"Challenges evaluated through the parallel batch engine.")
	batchWorkersBusy = telemetry.Default().Gauge("puf_batch_workers_busy",
		"Batch worker goroutines currently evaluating.")
	batchGateEvalRate = telemetry.Default().Gauge("puf_batch_gate_evals_per_sec",
		"Effective gate evaluations per second achieved by the most recent gate-level batch (lane-evals under bitslicing; unset for the linear fast model).")
	bitsliceLanesBusy = telemetry.Default().Gauge("puf_bitslice_lanes_busy",
		"Average active lanes per 64-lane block in the most recent bitsliced batch.")
)
