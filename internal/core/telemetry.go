package core

import "pufatt/internal/telemetry"

// PUF-pipeline instruments. The ECC correction count is the reliability
// signal of the reverse fuzzy extractor: corrected bits per recovery track
// the device's raw bit-error rate, and a drift upward is aging or an
// environmental shift long before recoveries start failing outright.
var (
	pufQueries = telemetry.Default().Counter("puf_queries_total",
		"Prover-side PUF() invocations (eight raw responses each).")
	eccRecoveries = telemetry.Default().Counter("ecc_recoveries_total",
		"Verifier-side sketch recoveries performed.")
	eccCorrectedBits = telemetry.Default().Counter("ecc_corrected_bits_total",
		"Raw response bits corrected by the secure sketch during recovery.")
)
