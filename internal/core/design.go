// Package core implements the paper's primary contribution: the ALU PUF
// (Section 2) and its composition with error correction and response
// obfuscation into the PUF() primitive used by the PUFatt attestation
// protocol (Section 3).
//
// The package distinguishes three roles:
//
//   - Design: one microprocessor design containing the two-ALU PUF datapath.
//     A design fixes the netlist, the technology delay model, the variation
//     model configuration, and the design-level layout skew of the arbiter
//     input routes (identical across all chips manufactured from the
//     design — the reason measured inter-chip distances sit below the ideal
//     50 %).
//   - Device: one manufactured chip of a Design, holding its private
//     process-variation realisation. Devices measure raw responses with
//     arbiter noise, under configurable operating conditions, and under a
//     configurable clock (for the overclocking analysis).
//   - Emulator: the verifier-side model H of one device — the gate-level
//     delay table the paper's trusted party extracts at manufacturing time.
//     Emulation is noiseless and nominal-corner by definition.
package core

import (
	"fmt"
	"math"

	"pufatt/internal/delay"
	"pufatt/internal/netlist"
	"pufatt/internal/rng"
	"pufatt/internal/variation"
)

// Config parameterises an ALU PUF design.
type Config struct {
	// Width is the adder operand width: 16 (FPGA prototype) or 32
	// (simulated ASIC) in the paper. The response width equals Width.
	Width int
	// UseCarry adds the carry-out race as one extra response bit.
	UseCarry bool
	// Adder selects the adder architecture of the PUF datapath; the
	// paper's design is the ripple-carry default. The ablation benches
	// compare PUF quality across architectures.
	Adder netlist.AdderKind
	// JitterPs is the standard deviation, at the nominal corner, of the
	// per-evaluation Gaussian noise on each arbiter's arrival-time
	// difference — the arbiter-metastability model. It scales with the
	// corner's inverter delay.
	JitterPs float64
	// LayoutSkewPs scales the design-level routing mismatch between the
	// two arbiter input routes. Bit i receives a fixed skew drawn from
	// N(0, LayoutSkewPs·sqrt((i+1)/Width)): deeper bits have longer,
	// harder-to-match routes.
	LayoutSkewPs float64
	// DesignSeed determinises the layout skew; chips of the same design
	// share it.
	DesignSeed uint64
	// RoutingSkewPs, when nonzero, adds a per-gate nominal delay offset
	// drawn once per design from N(0, RoutingSkewPs·kindFactor) and shared
	// by every chip. It models FPGA routing: the automated router gives
	// the two "identical" ALUs different wire delays, a challenge-dependent
	// asymmetry common to all boards programmed with the same bitstream
	// (the reason the paper's measured FPGA inter-chip HD sits well below
	// the simulated ASIC value). Zero for ASIC.
	RoutingSkewPs float64
	// Tech is the technology parameter set (zero value → Default45nm).
	Tech delay.Params
	// Variation configures the quad-tree process model. A zero value is
	// replaced by variation.DefaultConfig over the technology's SigmaVth.
	Variation variation.Config
	// PlacementX, PlacementY locate the PUF datapath on the die (µm).
	PlacementX, PlacementY float64
}

// DefaultConfig returns the calibrated 32-bit simulation configuration used
// by the Figure 3/4 experiments. Jitter and skew were calibrated (see
// EXPERIMENTS.md) so that raw inter- and intra-chip Hamming distances land
// in the regime the paper reports (35.9 % and 11.3 %).
func DefaultConfig() Config {
	return Config{
		Width:        32,
		JitterPs:     2.6,
		LayoutSkewPs: 8.5,
		DesignSeed:   0x50554641747431, // "PUFatt1"
		PlacementX:   700,
		PlacementY:   600,
	}
}

func (c Config) withDefaults() Config {
	if c.Tech == (delay.Params{}) {
		c.Tech = delay.Default45nm()
	}
	if c.Variation == (variation.Config{}) {
		c.Variation = variation.DefaultConfig(c.Tech.SigmaVth())
	}
	return c
}

func (c Config) validate() error {
	if c.Width < 2 || c.Width > 64 {
		return fmt.Errorf("core: PUF width %d outside [2,64]", c.Width)
	}
	if c.JitterPs < 0 || c.LayoutSkewPs < 0 {
		return fmt.Errorf("core: negative noise parameters (jitter %g, skew %g)", c.JitterPs, c.LayoutSkewPs)
	}
	return nil
}

// Design is one microprocessor design embedding the two-ALU PUF.
type Design struct {
	cfg      Config
	datapath *netlist.PUFDatapath
	model    *delay.Model
	// skewPs[i] is the fixed design-level skew added to ALU 1's arrival
	// for response bit i (may be negative).
	skewPs []float64
	// gateSkewPs is the per-gate routing delay offset (nil when
	// RoutingSkewPs is zero); shared by all chips of the design.
	gateSkewPs []float64
}

// NewDesign creates a design from the configuration.
func NewDesign(cfg Config) (*Design, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Design{
		cfg: cfg,
		datapath: netlist.BuildPUFDatapath(netlist.PUFDatapathConfig{
			Width:    cfg.Width,
			UseCarry: cfg.UseCarry,
			Adder:    cfg.Adder,
			OriginX:  cfg.PlacementX,
			OriginY:  cfg.PlacementY,
		}),
		model: delay.NewModel(cfg.Tech),
	}
	skewSrc := rng.New(cfg.DesignSeed).Sub("layout-skew")
	bits := d.datapath.ResponseBits()
	d.skewPs = make([]float64, bits)
	for i := range d.skewPs {
		depth := float64(minInt(i, cfg.Width-1) + 1)
		d.skewPs[i] = skewSrc.NormMS(0, cfg.LayoutSkewPs*math.Sqrt(depth/float64(cfg.Width)))
	}
	if cfg.RoutingSkewPs > 0 {
		routeSrc := rng.New(cfg.DesignSeed).Sub("routing-skew")
		nl := d.datapath.Net
		d.gateSkewPs = make([]float64, len(nl.Gates))
		for g := range nl.Gates {
			if f := delay.KindFactor(nl.Gates[g].Kind); f > 0 {
				// Routing mismatch scales with the cell's drive burden but
				// never drives total delay negative (clamped in BuildTable).
				d.gateSkewPs[g] = routeSrc.NormMS(0, cfg.RoutingSkewPs*f)
			}
		}
	}
	return d, nil
}

// GateSkewPs returns the design's per-gate routing skew table (nil for
// ASIC designs).
func (d *Design) GateSkewPs() []float64 { return d.gateSkewPs }

// MustNewDesign is NewDesign that panics on error.
func MustNewDesign(cfg Config) *Design {
	d, err := NewDesign(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the design configuration (with defaults resolved).
func (d *Design) Config() Config { return d.cfg }

// Datapath exposes the structural netlist (public knowledge; the secret is
// the per-chip delay realisation).
func (d *Design) Datapath() *netlist.PUFDatapath { return d.datapath }

// DelayModel returns the technology delay model.
func (d *Design) DelayModel() *delay.Model { return d.model }

// ResponseBits returns the response width in bits.
func (d *Design) ResponseBits() int { return d.datapath.ResponseBits() }

// ChallengeBits returns the challenge width in bits (two operands).
func (d *Design) ChallengeBits() int { return 2 * d.cfg.Width }

// SkewPs returns the design-level per-bit layout skew (shared across chips).
func (d *Design) SkewPs() []float64 { return append([]float64(nil), d.skewPs...) }

// Mix32 is the public 32-bit finaliser (MurmurHash3) used to expand
// challenge seeds into ALU operands. It is chosen to be cheaply computable
// by the prover CPU itself — a handful of XOR/SHR/MUL instructions — so the
// attestation program can derive PUF operands in software exactly as the
// verifier does (see internal/mcu and internal/swatt).
func Mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// Operand-derivation constants for ExpandOperands, shared with the MCU
// attestation program generator.
const (
	ExpandStepA = 0x9e3779b9 // golden-ratio step for operand A
	ExpandStepB = 0x7f4a7c15 // step for operand B
	ExpandSaltB = 0xd192ed03 // salt separating the B stream
)

// ExpandOperands derives the j-th ALU operand pair for a challenge seed.
// Only the low 32 bits of the seed participate, so a 32-bit prover derives
// identical operands.
func (d *Design) ExpandOperands(seed uint64, j int) (a, b uint32) {
	s := uint32(seed)
	a = Mix32(s + ExpandStepA*uint32(2*j+1))
	b = Mix32((s ^ ExpandSaltB) + ExpandStepB*uint32(2*j+2))
	return a, b
}

// ExpandChallenge expands a challenge seed into the j-th full challenge
// bit-vector for this design. The obfuscation network consumes eight raw
// responses per output; prover and verifier derive the eight underlying raw
// challenges from one seed with this public expansion (a mixing function,
// not a secret). Widths above 32 repeat the operand words.
func (d *Design) ExpandChallenge(seed uint64, j int) []uint8 {
	return d.ExpandChallengeInto(make([]uint8, 2*d.cfg.Width), seed, j)
}

// ExpandChallengeInto is ExpandChallenge into caller-owned storage (which
// must have length ChallengeBits). Batch producers use it to fill
// preallocated challenge matrices without a per-challenge allocation.
func (d *Design) ExpandChallengeInto(dst []uint8, seed uint64, j int) []uint8 {
	if len(dst) != 2*d.cfg.Width {
		panic(fmt.Sprintf("core: challenge buffer of %d bits, want %d", len(dst), 2*d.cfg.Width))
	}
	a, b := d.ExpandOperands(seed, j)
	for i := 0; i < d.cfg.Width; i++ {
		dst[i] = uint8(a >> uint(i%32) & 1)
		dst[d.cfg.Width+i] = uint8(b >> uint(i%32) & 1)
	}
	return dst
}

// ChallengeFromOperands builds a challenge bit-vector from two operand
// words.
func (d *Design) ChallengeFromOperands(a, b uint64) []uint8 {
	ch := make([]uint8, 2*d.cfg.Width)
	for i := 0; i < d.cfg.Width; i++ {
		ch[i] = uint8(a >> uint(i) & 1)
		ch[d.cfg.Width+i] = uint8(b >> uint(i) & 1)
	}
	return ch
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
