package core

import (
	"fmt"
	"math"

	"pufatt/internal/delay"
	"pufatt/internal/netlist"
)

// Silicon aging support. Delay-based PUFs drift as transistors age (BTI/HCI
// raise threshold voltages over months of operation), which erodes the
// enrolled reference. The paper cites its companion work (Kong &
// Koushanfar, IEEE TETC 2013) on turning this around: *directed* aging —
// stressing only the ALU that currently wins each arbiter — pushes the
// arrival-time differences away from zero and makes weak response bits
// reliable. Both effects are modelled here: Age applies uniform wear,
// ReinforcementAge applies the directed burn-in.

// AgingParams parameterises the threshold-voltage drift model
// ΔVth(t) = Scale · (t/1000 h)^Exponent, with per-gate variability.
type AgingParams struct {
	// ScaleV is the mean Vth shift after 1000 hours of full stress (V).
	ScaleV float64
	// Exponent is the time power law (BTI: ~0.15–0.25).
	Exponent float64
	// Variability is the relative per-gate spread of the shift.
	Variability float64
}

// DefaultAgingParams returns a 45 nm BTI-like drift model: 30 mV per 1000 h
// of continuous stress, t^0.2, ±20 % per gate.
func DefaultAgingParams() AgingParams {
	return AgingParams{ScaleV: 0.030, Exponent: 0.2, Variability: 0.2}
}

// shift returns the mean Vth increase for the given effective stress hours.
func (p AgingParams) shift(hours float64) float64 {
	if hours <= 0 {
		return 0
	}
	return p.ScaleV * math.Pow(hours/1000, p.Exponent)
}

// Age applies uniform wear to every logic gate of the device: hours of
// operation at the given activity duty cycle (0..1). Each call models a
// fresh stress interval from the device's current state; the enrolled
// emulation model does NOT follow (re-export after aging to re-enroll).
func (dev *Device) Age(hours, duty float64) {
	if hours < 0 || duty < 0 || duty > 1 {
		panic(fmt.Sprintf("core: Age(hours=%g, duty=%g) out of range", hours, duty))
	}
	p := DefaultAgingParams()
	base := p.shift(hours * duty)
	dev.ensureAging()
	src := dev.agingSrc
	nl := dev.design.datapath.Net
	for g := range nl.Gates {
		switch nl.Gates[g].Kind {
		case netlist.Input, netlist.Const0, netlist.Const1:
			continue
		}
		s := base * (1 + p.Variability*src.Norm())
		if s < 0 {
			s = 0
		}
		dev.agingVth[g] += s
	}
	dev.reloadTables()
}

// ReinforcementAge applies the directed-aging response tuning of [13]: for
// each response bit, the ALU currently *losing* the race less often (the
// one whose output tends to arrive later) is stressed along that bit's
// logic cone, enlarging the arrival-time difference and hardening the bit
// against metastability flips. sampleChallenges sets how many random
// challenges estimate each bit's polarity.
func (dev *Device) ReinforcementAge(hours float64, sampleChallenges int) {
	if hours < 0 {
		panic(fmt.Sprintf("core: ReinforcementAge(hours=%g)", hours))
	}
	dev.ensureAging()
	p := DefaultAgingParams()
	base := p.shift(hours)
	// Estimate per-bit polarity from noiseless responses.
	bits := dev.design.ResponseBits()
	ones := make([]int, bits)
	src := dev.agingSrc.Sub("reinforce/challenges")
	for k := 0; k < sampleChallenges; k++ {
		r := dev.NoiselessResponse(dev.design.ExpandChallenge(src.Uint64(), 0))
		for i, bit := range r {
			ones[i] += int(bit)
		}
	}
	noise := dev.agingSrc.Sub("reinforce/noise")
	for i := 0; i < bits; i++ {
		a0, a1 := dev.design.datapath.Pair(i)
		// Bit mostly 1 ⇒ ALU0 usually first (Δ = t1 − t0 > 0): stress
		// ALU1's cone so t1 grows and Δ widens. Otherwise stress ALU0.
		target := a1
		if 2*ones[i] < sampleChallenges {
			target = a0
		}
		for _, g := range dev.coneOf(target) {
			s := base * (1 + p.Variability*noise.Norm())
			if s < 0 {
				s = 0
			}
			dev.agingVth[g] += s
		}
	}
	dev.reloadTables()
}

// AgingVth returns the accumulated per-gate aging shifts (nil before any
// aging).
func (dev *Device) AgingVth() []float64 { return dev.agingVth }

func (dev *Device) ensureAging() {
	if dev.agingVth == nil {
		dev.agingVth = make([]float64, len(dev.design.datapath.Net.Gates))
	}
	if dev.agingSrc == nil {
		dev.agingSrc = dev.noise.SubN("aging", dev.chip.ID())
	}
}

// reloadTables drops every cached delay table (they embed the pre-aging
// offsets) and rebuilds the current corner.
func (dev *Device) reloadTables() {
	dev.tables = make(map[delay.Conditions]delay.Table)
	dev.physGen++ // gate delays changed: linear-model fits are stale
	dev.SetConditions(dev.cond)
}

// effectiveVth returns process variation plus accumulated aging plus the
// current epoch's reconfiguration overlay (epoch.go).
func (dev *Device) effectiveVth() []float64 {
	if dev.agingVth == nil && dev.epochVth == nil {
		return dev.dVth
	}
	out := make([]float64, len(dev.dVth))
	for i := range out {
		out[i] = dev.dVth[i]
		if dev.agingVth != nil {
			out[i] += dev.agingVth[i]
		}
		if dev.epochVth != nil {
			out[i] += dev.epochVth[i]
		}
	}
	return out
}

// coneOf returns the gate indices of the transitive fanin cone of net
// (excluding inputs/constants), memoised per device.
func (dev *Device) coneOf(net int) []int {
	if dev.cones == nil {
		dev.cones = make(map[int][]int)
	}
	if c, ok := dev.cones[net]; ok {
		return c
	}
	nl := dev.design.datapath.Net
	seen := make(map[int]bool)
	var cone []int
	var walk func(g int)
	walk = func(g int) {
		if seen[g] {
			return
		}
		seen[g] = true
		switch nl.Gates[g].Kind {
		case netlist.Input, netlist.Const0, netlist.Const1:
			return
		}
		cone = append(cone, g)
		for _, f := range nl.Gates[g].Fanin {
			walk(f)
		}
	}
	walk(net)
	dev.cones[net] = cone
	return cone
}
