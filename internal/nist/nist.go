// Package nist implements the bit-stream randomness tests customarily run
// on PUF response streams (a subset of the NIST SP 800-22 battery, plus
// min-entropy estimation): frequency, block frequency, runs, serial
// (2-bit), cumulative sums, and approximate entropy. PUF papers, PUFatt
// included, argue unpredictability through Hamming-distance statistics;
// these tests probe the complementary property — that the response stream
// of a *single* device is not trivially structured.
package nist

import (
	"fmt"
	"math"
)

// Result is one test's outcome: the statistic, its p-value, and the pass
// verdict at the conventional α = 0.01.
type Result struct {
	Name      string
	Statistic float64
	PValue    float64
	Pass      bool
}

const alpha = 0.01

func verdict(name string, stat, p float64) Result {
	return Result{Name: name, Statistic: stat, PValue: p, Pass: p >= alpha}
}

// erfc is math.Erfc, aliased for readability in the formulas below.
func erfc(x float64) float64 { return math.Erfc(x) }

// igamc computes the upper regularised incomplete gamma function Q(a, x),
// used by several SP 800-22 tests. Implementation follows the continued-
// fraction/series split of Numerical Recipes.
func igamc(a, x float64) float64 {
	if x <= 0 || a <= 0 {
		return 1
	}
	if x < a+1 {
		return 1 - igamSeries(a, x)
	}
	return igamCF(a, x)
}

func igamSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func igamCF(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// Frequency is the monobit test: the proportion of ones should be near 1/2.
func Frequency(bits []uint8) Result {
	n := len(bits)
	s := 0
	for _, b := range bits {
		if b != 0 {
			s++
		} else {
			s--
		}
	}
	stat := math.Abs(float64(s)) / math.Sqrt(float64(n))
	return verdict("frequency", stat, erfc(stat/math.Sqrt2))
}

// BlockFrequency tests the proportion of ones within m-bit blocks.
func BlockFrequency(bits []uint8, m int) Result {
	n := len(bits)
	nBlocks := n / m
	if nBlocks == 0 {
		return Result{Name: "block-frequency", Pass: false}
	}
	chi := 0.0
	for b := 0; b < nBlocks; b++ {
		ones := 0
		for i := 0; i < m; i++ {
			ones += int(bits[b*m+i])
		}
		pi := float64(ones) / float64(m)
		chi += (pi - 0.5) * (pi - 0.5)
	}
	chi *= 4 * float64(m)
	return verdict("block-frequency", chi, igamc(float64(nBlocks)/2, chi/2))
}

// Runs counts maximal runs of identical bits; too few or too many indicate
// structure. Requires the frequency test to be passable first (per SP
// 800-22 the prerequisite is |π − 1/2| < 2/√n).
func Runs(bits []uint8) Result {
	n := len(bits)
	ones := 0
	for _, b := range bits {
		ones += int(b)
	}
	pi := float64(ones) / float64(n)
	if math.Abs(pi-0.5) >= 2/math.Sqrt(float64(n)) {
		return Result{Name: "runs", Statistic: pi, PValue: 0, Pass: false}
	}
	v := 1
	for i := 1; i < n; i++ {
		if bits[i] != bits[i-1] {
			v++
		}
	}
	num := math.Abs(float64(v) - 2*float64(n)*pi*(1-pi))
	den := 2 * math.Sqrt(2*float64(n)) * pi * (1 - pi)
	return verdict("runs", float64(v), erfc(num/den))
}

// Serial is the 2-bit serial test (∇ψ²_m for m = 2): overlapping 2-bit
// patterns should be equidistributed.
func Serial(bits []uint8) Result {
	n := len(bits)
	if n < 4 {
		return Result{Name: "serial", Pass: false}
	}
	psi := func(m int) float64 {
		counts := make([]int, 1<<uint(m))
		for i := 0; i < n; i++ {
			v := 0
			for j := 0; j < m; j++ {
				v = v<<1 | int(bits[(i+j)%n])
			}
			counts[v]++
		}
		sum := 0.0
		for _, c := range counts {
			sum += float64(c) * float64(c)
		}
		return sum*float64(int(1)<<uint(m))/float64(n) - float64(n)
	}
	d := psi(2) - psi(1)
	return verdict("serial", d, igamc(1, d/2))
}

// CumulativeSums is the cusum test (forward): the random walk of ±1 bits
// should not stray far from the origin.
func CumulativeSums(bits []uint8) Result {
	n := len(bits)
	s, maxZ := 0, 0
	for _, b := range bits {
		if b != 0 {
			s++
		} else {
			s--
		}
		if s > maxZ {
			maxZ = s
		}
		if -s > maxZ {
			maxZ = -s
		}
	}
	z := float64(maxZ)
	fn := float64(n)
	sqn := math.Sqrt(fn)
	p := 1.0
	sum1 := 0.0
	for k := int(math.Floor((-fn/z + 1) / 4)); k <= int(math.Floor((fn/z-1)/4)); k++ {
		sum1 += normCDF((float64(4*k)+1)*z/sqn) - normCDF((float64(4*k)-1)*z/sqn)
	}
	sum2 := 0.0
	for k := int(math.Floor((-fn/z - 3) / 4)); k <= int(math.Floor((fn/z-1)/4)); k++ {
		sum2 += normCDF((float64(4*k)+3)*z/sqn) - normCDF((float64(4*k)+1)*z/sqn)
	}
	p = 1 - sum1 + sum2
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return verdict("cusum", z, p)
}

func normCDF(x float64) float64 { return 0.5 * erfc(-x/math.Sqrt2) }

// ApproximateEntropy compares the frequencies of overlapping m- and
// (m+1)-bit patterns.
func ApproximateEntropy(bits []uint8, m int) Result {
	n := len(bits)
	phi := func(m int) float64 {
		if m == 0 {
			return 0
		}
		counts := make([]int, 1<<uint(m))
		for i := 0; i < n; i++ {
			v := 0
			for j := 0; j < m; j++ {
				v = v<<1 | int(bits[(i+j)%n])
			}
			counts[v]++
		}
		sum := 0.0
		for _, c := range counts {
			if c > 0 {
				p := float64(c) / float64(n)
				sum += p * math.Log(p)
			}
		}
		return sum
	}
	apen := phi(m) - phi(m+1)
	chi := 2 * float64(n) * (math.Ln2 - apen)
	return verdict("approximate-entropy", apen, igamc(float64(int(1)<<uint(m-1)), chi/2))
}

// MinEntropyPerBit estimates the min-entropy per bit from the most common
// value frequency (the MCV estimator of SP 800-90B, per bit position is the
// caller's job; this treats the stream as iid bits).
func MinEntropyPerBit(bits []uint8) float64 {
	n := len(bits)
	if n == 0 {
		return 0
	}
	ones := 0
	for _, b := range bits {
		ones += int(b)
	}
	pMax := float64(ones) / float64(n)
	if pMax < 0.5 {
		pMax = 1 - pMax
	}
	// Upper confidence bound per SP 800-90B.
	pU := pMax + 2.576*math.Sqrt(pMax*(1-pMax)/float64(n))
	if pU > 1 {
		pU = 1
	}
	return -math.Log2(pU)
}

// Battery runs every test over the stream and returns the results.
func Battery(bits []uint8) []Result {
	return []Result{
		Frequency(bits),
		BlockFrequency(bits, 128),
		Runs(bits),
		Serial(bits),
		CumulativeSums(bits),
		ApproximateEntropy(bits, 2),
	}
}

// Summary formats a battery result set.
func Summary(results []Result) string {
	out := ""
	for _, r := range results {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
		}
		out += fmt.Sprintf("  %-20s %s (p=%.4f)\n", r.Name, status, r.PValue)
	}
	return out
}
