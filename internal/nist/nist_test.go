package nist

import (
	"math"
	"strings"
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/rng"
)

func randomBits(n int, seed uint64) []uint8 {
	b := make([]uint8, n)
	rng.New(seed).Bits(b)
	return b
}

func constantBits(n int, v uint8) []uint8 {
	b := make([]uint8, n)
	for i := range b {
		b[i] = v
	}
	return b
}

func alternatingBits(n int) []uint8 {
	b := make([]uint8, n)
	for i := range b {
		b[i] = uint8(i & 1)
	}
	return b
}

func TestBatteryPassesOnGoodRandomness(t *testing.T) {
	// A decent PRNG stream must pass every test (α = 0.01; with a fixed
	// seed this is deterministic).
	for _, r := range Battery(randomBits(20000, 1)) {
		if !r.Pass {
			t.Errorf("%s failed on PRNG stream (p=%.5f)", r.Name, r.PValue)
		}
	}
}

func TestBatteryMultipleSeeds(t *testing.T) {
	// Across several seeds at α = 0.01, allow the occasional single
	// failure but no systematic one.
	failures := map[string]int{}
	const seeds = 10
	for s := uint64(2); s < 2+seeds; s++ {
		for _, r := range Battery(randomBits(10000, s)) {
			if !r.Pass {
				failures[r.Name]++
			}
		}
	}
	for name, n := range failures {
		if n > 2 {
			t.Errorf("%s failed %d/%d seeds", name, n, seeds)
		}
	}
}

func TestFrequencyCatchesBias(t *testing.T) {
	// 60 % ones must fail the monobit test at any reasonable length.
	b := make([]uint8, 10000)
	src := rng.New(3)
	for i := range b {
		if src.Float64() < 0.6 {
			b[i] = 1
		}
	}
	if Frequency(b).Pass {
		t.Error("frequency test passed a 60% biased stream")
	}
}

func TestRunsCatchesStructure(t *testing.T) {
	if Runs(alternatingBits(10000)).Pass {
		t.Error("runs test passed a perfectly alternating stream")
	}
	if Runs(constantBits(10000, 1)).Pass {
		t.Error("runs test passed a constant stream")
	}
}

func TestSerialCatchesPatterns(t *testing.T) {
	// Repeating 0011: every 1-bit and 2-bit frequency is balanced... the
	// 2-bit patterns 01,10,00,11 appear equally, so build a stream with
	// unbalanced 2-bit patterns instead: repeating 011.
	b := make([]uint8, 9999)
	for i := range b {
		if i%3 != 0 {
			b[i] = 1
		}
	}
	if Serial(b).Pass {
		t.Error("serial test passed a period-3 stream")
	}
}

func TestCusumCatchesDrift(t *testing.T) {
	// First half ones, second half zeros: balanced overall but the walk
	// strays n/2 from the origin.
	b := append(constantBits(5000, 1), constantBits(5000, 0)...)
	if CumulativeSums(b).Pass {
		t.Error("cusum test passed a drifting stream")
	}
	if !CumulativeSums(randomBits(10000, 4)).Pass {
		t.Error("cusum test failed a random stream")
	}
}

func TestApproximateEntropyCatchesRepetition(t *testing.T) {
	b := alternatingBits(10000)
	if ApproximateEntropy(b, 2).Pass {
		t.Error("ApEn passed an alternating stream")
	}
}

func TestBlockFrequencyCatchesClusteredBias(t *testing.T) {
	// Alternate biased blocks: global frequency fine, per-block terrible.
	b := make([]uint8, 12800)
	for blk := 0; blk < 100; blk++ {
		v := uint8(blk & 1)
		for i := 0; i < 128; i++ {
			b[blk*128+i] = v
		}
	}
	if BlockFrequency(b, 128).Pass {
		t.Error("block frequency passed clustered bias")
	}
}

func TestMinEntropy(t *testing.T) {
	if h := MinEntropyPerBit(randomBits(50000, 5)); h < 0.95 {
		t.Errorf("min-entropy of random stream = %.3f, want ~1", h)
	}
	biased := make([]uint8, 50000)
	src := rng.New(6)
	for i := range biased {
		if src.Float64() < 0.9 {
			biased[i] = 1
		}
	}
	h := MinEntropyPerBit(biased)
	want := -math.Log2(0.9)
	if math.Abs(h-want) > 0.05 {
		t.Errorf("min-entropy of 90%% stream = %.3f, want ~%.3f", h, want)
	}
	if MinEntropyPerBit(nil) != 0 {
		t.Error("empty stream entropy should be 0")
	}
}

func TestIgamcSanity(t *testing.T) {
	// Q(1, x) = e^-x.
	for _, x := range []float64{0.1, 1, 3, 10} {
		if got, want := igamc(1, x), math.Exp(-x); math.Abs(got-want) > 1e-9 {
			t.Errorf("igamc(1,%v) = %v, want %v", x, got, want)
		}
	}
	// Q(a, 0) = 1.
	if igamc(2.5, 0) != 1 {
		t.Error("igamc(a,0) != 1")
	}
}

func TestSummaryFormat(t *testing.T) {
	s := Summary(Battery(randomBits(4000, 7)))
	if !strings.Contains(s, "frequency") || !strings.Contains(s, "PASS") {
		t.Errorf("summary malformed:\n%s", s)
	}
}

// TestALUPUFStreamQuality is the PUF-facing use of the battery: the
// obfuscated response stream of a single device should pass (the raw stream
// is allowed to fail frequency/runs because of layout-skew bias — that bias
// is exactly why the paper obfuscates).
func TestALUPUFStreamQuality(t *testing.T) {
	dev := core.MustNewDevice(core.MustNewDesign(core.DefaultConfig()), rng.New(8), 0)
	oracleStream := func(obf bool, n int) []uint8 {
		var out []uint8
		src := rng.New(9)
		for len(out) < n {
			seed := src.Uint64()
			if obf {
				pl := core.MustNewPipeline(dev)
				o, err := pl.Query(seed)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, o.Z...)
			} else {
				out = append(out, dev.RawResponseCopy(dev.Design().ExpandChallenge(seed, 0))...)
			}
		}
		return out[:n]
	}
	raw := oracleStream(false, 8000)
	obf := oracleStream(true, 8000)
	rawFails, obfFails := 0, 0
	for _, r := range Battery(raw) {
		if !r.Pass {
			rawFails++
		}
	}
	for _, r := range Battery(obf) {
		if !r.Pass {
			obfFails++
		}
	}
	// Finding worth documenting: a single device's response stream is NOT
	// a uniform bit stream — every position carries its own layout-skew
	// bias, so concatenating fixed-position bits produces period-32
	// structure that the serial/runs/ApEn tests rightly flag, raw AND
	// obfuscated (obfuscation shrinks the biases but cannot erase the
	// periodicity). What obfuscation must deliver is higher per-bit
	// entropy, which the min-entropy estimator confirms.
	t.Logf("battery failures: raw %d, obfuscated %d", rawFails, obfFails)
	if obfFails > rawFails {
		t.Errorf("obfuscation worsened stream quality: %d vs %d failures", obfFails, rawFails)
	}
	hRaw := MinEntropyPerBit(raw)
	hObf := MinEntropyPerBit(obf)
	hPerPosRaw := meanPositionalMinEntropy(t, raw, 32)
	hPerPosObf := meanPositionalMinEntropy(t, obf, 32)
	t.Logf("min-entropy/bit: raw %.3f obf %.3f; positional: raw %.3f obf %.3f",
		hRaw, hObf, hPerPosRaw, hPerPosObf)
	if hPerPosObf <= hPerPosRaw {
		t.Errorf("obfuscation did not raise positional min-entropy: %.3f vs %.3f", hPerPosObf, hPerPosRaw)
	}
}

// meanPositionalMinEntropy de-interleaves the stream into its response-bit
// positions and averages the per-position min-entropy — the quantity the
// obfuscation network is supposed to improve.
func meanPositionalMinEntropy(t *testing.T, bits []uint8, width int) float64 {
	t.Helper()
	sum := 0.0
	for p := 0; p < width; p++ {
		var lane []uint8
		for i := p; i < len(bits); i += width {
			lane = append(lane, bits[i])
		}
		sum += MinEntropyPerBit(lane)
	}
	return sum / float64(width)
}
