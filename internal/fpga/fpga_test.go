package fpga

import (
	"math"
	"strings"
	"testing"

	"pufatt/internal/ecc"
	"pufatt/internal/rng"
	"pufatt/internal/stats"
)

func TestPDLBasics(t *testing.T) {
	p := NewPDL(64, 1.6, rng.New(1))
	if p.Stages() != 64 {
		t.Fatalf("stages = %d", p.Stages())
	}
	if p.Setting() != 0 || p.DelayPs() != 0 {
		t.Error("fresh PDL should contribute no delay")
	}
	p.SetSetting(10)
	d10 := p.DelayPs()
	if d10 <= 0 {
		t.Error("10 stages contribute no delay")
	}
	p.SetSetting(64)
	if p.DelayPs() != p.MaxDelayPs() {
		t.Error("full setting != MaxDelayPs")
	}
	if p.MaxDelayPs() <= d10 {
		t.Error("delay not increasing with stages")
	}
	// Clamping.
	p.SetSetting(-5)
	if p.Setting() != 0 {
		t.Error("negative setting not clamped")
	}
	p.Adjust(1000)
	if p.Setting() != 64 {
		t.Error("overflow setting not clamped")
	}
}

func TestPDLStageVariation(t *testing.T) {
	p := NewPDL(64, 1.6, rng.New(2))
	q := NewPDL(64, 1.6, rng.New(3))
	if p.MaxDelayPs() == q.MaxDelayPs() {
		t.Error("two PDLs have identical total delay; stage variation missing")
	}
	// Mean step should be near nominal.
	mean := p.MaxDelayPs() / 64
	if math.Abs(mean-1.6) > 0.25 {
		t.Errorf("mean stage delay %v, want ~1.6", mean)
	}
}

func TestPDLPanicsOnBadStages(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 stages")
		}
	}()
	NewPDL(0, 1, rng.New(1))
}

func TestBoardConstruction(t *testing.T) {
	cfg := DefaultConfig()
	design, err := NewDesign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := MustNewBoard(design, rng.New(5), 0, cfg)
	if b.Device().ExtraSkewPs() == nil {
		t.Error("board did not install extra skew")
	}
	badCfg := cfg
	badCfg.Width = 32
	if _, err := NewBoard(design, rng.New(5), 0, badCfg); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestCalibrationReducesBias(t *testing.T) {
	cfg := DefaultConfig()
	design, _ := NewDesign(cfg)
	b := MustNewBoard(design, rng.New(6), 0, cfg)
	rep := b.Calibrate(12, 300, rng.New(7))
	var before, after float64
	for i := range rep.InitialBias {
		before += math.Abs(rep.InitialBias[i] - 0.5)
		after += math.Abs(rep.FinalBias[i] - 0.5)
	}
	before /= float64(len(rep.InitialBias))
	after /= float64(len(rep.FinalBias))
	if after >= before {
		t.Errorf("calibration did not reduce mean |bias-0.5|: %.3f -> %.3f", before, after)
	}
	if rep.MeanResidual > 0.2 {
		t.Errorf("mean residual bias %.3f too large after calibration", rep.MeanResidual)
	}
}

func TestCalibratedBoardsMatchPaperRegime(t *testing.T) {
	// The §4.1 FPGA measurement: two boards, PDL-calibrated, 16-bit PUF.
	// Paper: inter-chip 3.0 bits raw, intra-chip 2.9 bits. Accept ±1.2
	// bits (simulation vs two physical boards).
	cfg := DefaultConfig()
	design, _ := NewDesign(cfg)
	master := rng.New(42)
	b0 := MustNewBoard(design, master, 0, cfg)
	b1 := MustNewBoard(design, master, 1, cfg)
	cal := rng.New(7)
	b0.Calibrate(12, 300, cal.Sub("b0"))
	b1.Calibrate(12, 300, cal.Sub("b1"))
	src := rng.New(9)
	var inter, intra stats.Summary
	for k := 0; k < 1200; k++ {
		ch := design.ExpandChallenge(src.Uint64(), 0)
		r0 := b0.Device().RawResponseCopy(ch)
		r1 := b1.Device().RawResponseCopy(ch)
		inter.Add(float64(stats.HammingDistance(r0, r1)))
		intra.Add(float64(stats.HammingDistance(r0, b0.Device().RawResponse(ch))))
	}
	if math.Abs(inter.Mean()-3.0) > 1.2 {
		t.Errorf("FPGA inter-chip HD %.2f bits, paper 3.0", inter.Mean())
	}
	if math.Abs(intra.Mean()-2.9) > 1.2 {
		t.Errorf("FPGA intra-chip HD %.2f bits, paper 2.9", intra.Mean())
	}
}

func TestResourceEstimates(t *testing.T) {
	alu := EstimateALUPUF(16)
	if alu.XORs != 32 {
		t.Errorf("ALU PUF XORs = %d, want 32 (2 ALUs x 16 FAs)", alu.XORs)
	}
	if alu.Registers != 80 {
		t.Errorf("ALU PUF registers = %d, want 80", alu.Registers)
	}
	if alu.LUTs < 70 || alu.LUTs > 120 {
		t.Errorf("ALU PUF LUTs = %d, outside the paper's regime (94)", alu.LUTs)
	}
	if obf := EstimateObfuscation(32); obf.LUTs != 224 {
		t.Errorf("obfuscation LUTs = %d, want 224 (the paper's figure)", obf.LUTs)
	}
	if pdl := EstimatePDL(16, 64); pdl.LUTs != 4096 || pdl.Registers != 128 {
		t.Errorf("PDL = %+v, want 4096 LUTs / 128 regs", pdl)
	}
	if sync := EstimateSyncLogic(); sync.LUTs != 9 || sync.Registers != 7 {
		t.Errorf("sync logic = %+v", sync)
	}
}

func TestSyndromeGeneratorEstimate(t *testing.T) {
	r := EstimateSyndromeGenerator(ecc.NewReedMuller15())
	// 26 parity rows with weight ~16: roughly 26×3 LUTs plus registers.
	if r.LUTs < 26 || r.LUTs > 300 {
		t.Errorf("syndrome generator LUTs = %d, implausible for a parallel tree", r.LUTs)
	}
	if r.Registers != 32+26 {
		t.Errorf("syndrome generator registers = %d, want 58", r.Registers)
	}
}

func TestTable1ShapePreserved(t *testing.T) {
	rows, err := Table1(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	byName := map[string]ComponentRow{}
	for _, r := range rows {
		byName[r.Component] = r
		if r.Paper.LUTs == 0 && r.Component != "Synchronization logic" {
			if r.Component == "Synchronization logic" {
				continue
			}
		}
	}
	// The ordering claims of Table 1 that must survive our estimation:
	// PDL and SIRC dwarf everything; the ALU PUF itself is tiny; sync is
	// the smallest.
	if byName["PDL logic"].Estimate.LUTs <= byName["ALU PUF"].Estimate.LUTs*10 {
		t.Error("PDL should dwarf the ALU PUF")
	}
	if byName["ALU PUF"].Estimate.LUTs <= byName["Synchronization logic"].Estimate.LUTs {
		t.Error("ALU PUF should exceed the sync logic")
	}
	if byName["Obfuscation logic"].Estimate.LUTs <= byName["ALU PUF"].Estimate.LUTs {
		t.Error("obfuscation network should exceed the bare ALU PUF")
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "ALU PUF") || !strings.Contains(out, "4096") {
		t.Errorf("formatted table missing content:\n%s", out)
	}
	if _, err := Table1(20); err == nil {
		t.Error("unsupported width accepted")
	}
}

func TestSIRCChannel(t *testing.T) {
	cfg := DefaultConfig()
	design, _ := NewDesign(cfg)
	b := MustNewBoard(design, rng.New(11), 0, cfg)
	ch := NewChannel(b, 125e6)
	seeds, resps, err := ch.CollectCRPs(100, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 100 || len(resps) != 100 {
		t.Fatalf("collected %d/%d", len(seeds), len(resps))
	}
	if len(resps[0]) != 16 {
		t.Errorf("response width %d", len(resps[0]))
	}
	wantBytes := uint64(100 * (8 + 2))
	if ch.Transferred() != wantBytes {
		t.Errorf("transferred %d bytes, want %d", ch.Transferred(), wantBytes)
	}
	if ch.TransferSeconds() <= 0 {
		t.Error("no transfer time accounted")
	}
	if _, _, err := ch.CollectCRPs(0, rng.New(1)); err == nil {
		t.Error("zero-count collection accepted")
	}
	if !strings.Contains(ch.Describe(), "SIRC") {
		t.Error("Describe missing")
	}
}
