// Package fpga models the paper's FPGA prototype artifacts (Section 4.1,
// "Implementation"): the Virtex-5 boards the 16-bit ALU PUF was measured
// on, the 64-stage programmable delay lines (PDLs) used to compensate
// routing skew, the calibration procedure of Majzoobi et al. [20], a
// resource estimator reproducing Table 1, and a SIRC-like host↔fabric
// data-collection channel [5].
package fpga

import (
	"fmt"

	"pufatt/internal/rng"
)

// PDL is one programmable delay line: a chain of LUT-based stages, each
// adding a small increment when enabled. Per-stage increments carry their
// own process variation, so two "identical" PDLs are not identical — which
// is why calibration iterates on measured bias rather than dead reckoning.
type PDL struct {
	stepPs  []float64
	setting int
}

// NewPDL builds a delay line with the given number of stages and a nominal
// per-stage step; actual steps vary ±15 % around nominal, drawn from src.
func NewPDL(stages int, nominalStepPs float64, src *rng.Source) *PDL {
	if stages < 1 {
		panic(fmt.Sprintf("fpga: PDL with %d stages", stages))
	}
	p := &PDL{stepPs: make([]float64, stages)}
	for i := range p.stepPs {
		step := src.NormMS(nominalStepPs, 0.15*nominalStepPs)
		if step < 0.1*nominalStepPs {
			step = 0.1 * nominalStepPs
		}
		p.stepPs[i] = step
	}
	return p
}

// Stages returns the number of stages.
func (p *PDL) Stages() int { return len(p.stepPs) }

// Setting returns the number of currently enabled stages.
func (p *PDL) Setting() int { return p.setting }

// SetSetting enables the first n stages, clamping n into [0, Stages].
func (p *PDL) SetSetting(n int) {
	if n < 0 {
		n = 0
	}
	if n > len(p.stepPs) {
		n = len(p.stepPs)
	}
	p.setting = n
}

// Adjust shifts the setting by delta stages (clamped).
func (p *PDL) Adjust(delta int) { p.SetSetting(p.setting + delta) }

// DelayPs returns the delay contributed at the current setting.
func (p *PDL) DelayPs() float64 {
	var d float64
	for _, s := range p.stepPs[:p.setting] {
		d += s
	}
	return d
}

// MaxDelayPs returns the delay with all stages enabled.
func (p *PDL) MaxDelayPs() float64 {
	var d float64
	for _, s := range p.stepPs {
		d += s
	}
	return d
}
