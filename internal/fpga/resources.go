package fpga

import (
	"fmt"
	"strings"

	"pufatt/internal/ecc"
	"pufatt/internal/netlist"
)

// Resources counts Virtex-5 primitives, the columns of the paper's Table 1.
type Resources struct {
	LUTs      int
	Registers int
	XORs      int
	BRAM      int
	FIFO      int
}

// Add returns the element-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		LUTs:      r.LUTs + o.LUTs,
		Registers: r.Registers + o.Registers,
		XORs:      r.XORs + o.XORs,
		BRAM:      r.BRAM + o.BRAM,
		FIFO:      r.FIFO + o.FIFO,
	}
}

// ComponentRow is one line of the Table 1 reproduction: our structural
// estimate next to the paper's reported numbers.
type ComponentRow struct {
	Component string
	Estimate  Resources
	Paper     Resources
}

// paperTable1 holds the numbers the paper reports for its 16-bit prototype.
var paperTable1 = map[string]Resources{
	"ALU PUF":               {LUTs: 94, Registers: 80, XORs: 32},
	"Synchronization logic": {LUTs: 9, Registers: 7},
	"Syndrome generator":    {LUTs: 1976, Registers: 880, BRAM: 3},
	"Obfuscation logic":     {LUTs: 224},
	"PDL logic":             {LUTs: 4096, Registers: 128},
	"SIRC logic":            {LUTs: 2808, Registers: 1826, BRAM: 38, FIFO: 2},
}

// EstimateALUPUF maps the two-ALU datapath onto Virtex-5 primitives:
// each full adder packs into two LUT6 (sum, carry) with the sum XOR
// absorbed and the carry-select XOR kept as a dedicated primitive; each
// arbiter costs one LUT (the cross-coupled latch) plus its register pair;
// challenge and launch flip-flops make up the register count.
func EstimateALUPUF(width int) Resources {
	dp := netlist.BuildPUFDatapath(netlist.PUFDatapathConfig{Width: width})
	fas := 2 * width        // full adders in both ALUs
	luts := 2*fas + width + // 2 LUT/FA + 1 LUT/arbiter
		(width*7+4)/8 // response readout muxing toward the latch bank
	regs := 2*width + // challenge operand registers
		2*width + // arbiter master/slave flip-flop pairs
		width // launch registers on the synchronized inputs
	_ = dp
	return Resources{LUTs: luts, Registers: regs, XORs: fas}
}

// EstimateSyncLogic models the small launch FSM: a 3-state controller plus
// the matched-enable fan-out tree. Constant by construction.
func EstimateSyncLogic() Resources {
	return Resources{LUTs: 9, Registers: 7}
}

// EstimateSyndromeGenerator counts a fully parallel syndrome generator for
// the code: one XOR tree per parity row, packed five inputs per LUT6, plus
// input/output registers. The paper's figure (1976 LUTs, 880 registers,
// 3 BRAM) is an order of magnitude larger because their prototype used a
// generic sequential BCH core with microcode in block RAM; EXPERIMENTS.md
// discusses the gap.
func EstimateSyndromeGenerator(code *ecc.Code) Resources {
	luts := 0
	for _, row := range parityRowWeights(code) {
		if row <= 1 {
			continue
		}
		// A w-input XOR needs ceil((w-1)/5) LUT6 in a tree.
		luts += (row - 1 + 4) / 5
	}
	return Resources{
		LUTs:      luts,
		Registers: code.N + code.ParityBits(),
	}
}

// parityRowWeights returns the weight of each parity-check row.
func parityRowWeights(code *ecc.Code) []int {
	weights := make([]int, 0, code.ParityBits())
	for j := 0; j < code.ParityBits(); j++ {
		w := 0
		for i := 0; i < code.N; i++ {
			e := uint64(1) << uint(i)
			if code.Syndrome(e)>>uint(j)&1 == 1 {
				w++
			}
		}
		weights = append(weights, w)
	}
	return weights
}

// EstimateObfuscation counts the XOR network: for a 2n-bit response, eight
// fold stages of n XOR2 each plus the three 2n-bit combining stages —
// 8n + 6n = 14n two-input XOR LUTs (224 for the paper's n=16).
func EstimateObfuscation(responseBits int) Resources {
	n := responseBits / 2
	return Resources{LUTs: 8*n + 3*responseBits}
}

// EstimatePDL counts the delay lines: every arbiter input (two per response
// bit of a width-bit PUF) passes through the configured number of stages,
// each a differential pair of LUTs (Majzoobi et al.'s PDL cell); the
// control word needs registers (the paper stores two 64-bit settings).
func EstimatePDL(width, stages int) Resources {
	return Resources{
		LUTs:      2 * 2 * width * stages,
		Registers: 2 * stages,
	}
}

// SIRCResources returns the footprint of the SIRC communication framework
// (Eguro, FCCM 2010) as reported by the paper; it is third-party IP used
// only for data collection and absent from an ASIC.
func SIRCResources() Resources {
	return paperTable1["SIRC logic"]
}

// Table1 reproduces the paper's Table 1 for a PUF of the given width: the
// component list with our structural estimates beside the published
// numbers. The code for the syndrome generator is chosen by response width.
func Table1(width int) ([]ComponentRow, error) {
	if _, err := ecc.ForResponseWidth(width); err != nil {
		return nil, fmt.Errorf("fpga: %w", err)
	}
	// The paper's post-processing rows (syndrome generator, obfuscation)
	// implement the 32-bit BCH[32,6,16] pipeline even on the 16-bit PUF
	// prototype, so the table always estimates those at 32 bits.
	rows := []ComponentRow{
		{Component: "ALU PUF", Estimate: EstimateALUPUF(width)},
		{Component: "Synchronization logic", Estimate: EstimateSyncLogic()},
		{Component: "Syndrome generator", Estimate: EstimateSyndromeGenerator(ecc.NewReedMuller15())},
		{Component: "Obfuscation logic", Estimate: EstimateObfuscation(32)},
		{Component: "PDL logic", Estimate: EstimatePDL(width, 64)},
		{Component: "SIRC logic", Estimate: SIRCResources()},
	}
	for i := range rows {
		rows[i].Paper = paperTable1[rows[i].Component]
	}
	return rows, nil
}

// FormatTable1 renders the rows as an aligned text table.
func FormatTable1(rows []ComponentRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %21s | %21s\n", "", "estimate", "paper")
	fmt.Fprintf(&b, "%-24s %6s %5s %4s %4s | %6s %5s %4s %4s %4s\n",
		"Component", "LUTs", "Regs", "XOR", "BRAM", "LUTs", "Regs", "XOR", "BRAM", "FIFO")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %6d %5d %4d %4d | %6d %5d %4d %4d %4d\n",
			r.Component, r.Estimate.LUTs, r.Estimate.Registers, r.Estimate.XORs, r.Estimate.BRAM,
			r.Paper.LUTs, r.Paper.Registers, r.Paper.XORs, r.Paper.BRAM, r.Paper.FIFO)
	}
	return b.String()
}
