package fpga

import (
	"errors"
	"fmt"

	"pufatt/internal/rng"
)

// Channel is a SIRC-like host↔fabric interface (Eguro, FCCM 2010): the host
// writes challenge batches into the input buffer, strobes a run register,
// and reads responses back, with transfer-time accounting so collection
// campaigns can be budgeted. It is the data-collection path of the paper's
// prototype, not part of the fielded design.
type Channel struct {
	board *Board
	// BytesPerSecond models the host link (SIRC over gigabit ethernet).
	BytesPerSecond float64
	// transferred accounts total bytes moved.
	transferred uint64
}

// NewChannel attaches a collection channel to a board.
func NewChannel(board *Board, bytesPerSecond float64) *Channel {
	return &Channel{board: board, BytesPerSecond: bytesPerSecond}
}

// Transferred returns the total bytes moved over the channel.
func (c *Channel) Transferred() uint64 { return c.transferred }

// TransferSeconds returns the time spent on the channel so far.
func (c *Channel) TransferSeconds() float64 {
	if c.BytesPerSecond <= 0 {
		return 0
	}
	return float64(c.transferred) / c.BytesPerSecond
}

// CollectCRPs runs a measurement campaign: n random challenge seeds are
// written to the fabric, each expanded and applied, and the raw responses
// read back. Returns the challenges used and the responses.
func (c *Channel) CollectCRPs(n int, src *rng.Source) (seeds []uint64, responses [][]uint8, err error) {
	if n <= 0 {
		return nil, nil, errors.New("fpga: non-positive CRP count")
	}
	dev := c.board.Device()
	width := dev.Design().Config().Width
	seeds = make([]uint64, n)
	responses = make([][]uint8, n)
	for k := 0; k < n; k++ {
		seeds[k] = src.Uint64()
		ch := dev.Design().ExpandChallenge(seeds[k], 0)
		responses[k] = dev.RawResponseCopy(ch)
		// Host → fabric: 8-byte seed; fabric → host: packed response.
		c.transferred += 8 + uint64((width+7)/8)
	}
	return seeds, responses, nil
}

// Describe summarises the channel state for logs.
func (c *Channel) Describe() string {
	return fmt.Sprintf("SIRC channel: %d bytes moved, %.3fs at %.0f MB/s",
		c.transferred, c.TransferSeconds(), c.BytesPerSecond/1e6)
}
