package fpga

import (
	"fmt"

	"pufatt/internal/core"
	"pufatt/internal/rng"
)

// Config parameterises the FPGA board model.
type Config struct {
	// Width is the PUF operand width (16 on the paper's Virtex-5 parts).
	Width int
	// RoutingSkewPs is the per-gate routing mismatch of the *bitstream*
	// (shared by every board programmed with it): the dominant asymmetry
	// the automated router introduces.
	RoutingSkewPs float64
	// BoardSkewPs is the per-bit arbiter-input mismatch each individual
	// board adds (die-to-die routing/process differences).
	BoardSkewPs float64
	// JitterPs is the arbiter noise on FPGA (larger than ASIC: jittery
	// clock networks and uncompensated supply noise).
	JitterPs float64
	// PDLStages and PDLStepPs configure the per-bit compensation lines.
	PDLStages int
	PDLStepPs float64
	// DesignSeed pins the shared bitstream realisation.
	DesignSeed uint64
}

// DefaultConfig returns the calibrated 16-bit board model whose measured
// statistics land in the regime of the paper's two-board experiment
// (inter-chip 18.8 % raw / 41.3 % obfuscated, intra-chip 18.6 %); see
// EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Width:         16,
		RoutingSkewPs: 21,
		BoardSkewPs:   22,
		JitterPs:      17,
		PDLStages:     64,
		PDLStepPs:     1.6,
		DesignSeed:    0x46504741 ^ 0x50554641, // "FPGA" ^ "PUFA"
	}
}

// NewDesign builds the shared bitstream: an ALU PUF design whose per-gate
// delays carry the routing skew and whose arbiters see FPGA-grade jitter.
// LayoutSkewPs is zero — on FPGA the bit-level mismatch is dominated by
// routing and modelled per-board instead.
func NewDesign(cfg Config) (*core.Design, error) {
	return core.NewDesign(core.Config{
		Width:         cfg.Width,
		JitterPs:      cfg.JitterPs,
		LayoutSkewPs:  0,
		RoutingSkewPs: cfg.RoutingSkewPs,
		DesignSeed:    cfg.DesignSeed,
	})
}

// Board is one physical FPGA board: a device instance plus its board-level
// skew and the per-bit PDL compensation pairs.
type Board struct {
	cfg       Config
	dev       *core.Device
	boardSkew []float64
	// pdl0/pdl1 delay the ALU0/ALU1 arbiter inputs of each bit; the
	// differential setting compensates the total skew.
	pdl0, pdl1 []*PDL
}

// NewBoard programs board id with the design and realises its private
// process variation, board skew, and PDL instances.
func NewBoard(design *core.Design, master *rng.Source, id int, cfg Config) (*Board, error) {
	if design.Config().Width != cfg.Width {
		return nil, fmt.Errorf("fpga: design width %d does not match config width %d",
			design.Config().Width, cfg.Width)
	}
	dev, err := core.NewDevice(design, master, id)
	if err != nil {
		return nil, err
	}
	bits := design.ResponseBits()
	b := &Board{
		cfg:       cfg,
		dev:       dev,
		boardSkew: make([]float64, bits),
		pdl0:      make([]*PDL, bits),
		pdl1:      make([]*PDL, bits),
	}
	skewSrc := master.SubN("fpga/board-skew", id)
	pdlSrc := master.SubN("fpga/pdl", id)
	for i := 0; i < bits; i++ {
		b.boardSkew[i] = skewSrc.NormMS(0, cfg.BoardSkewPs)
		b.pdl0[i] = NewPDL(cfg.PDLStages, cfg.PDLStepPs, pdlSrc)
		b.pdl1[i] = NewPDL(cfg.PDLStages, cfg.PDLStepPs, pdlSrc)
		// Start mid-range so calibration can move both directions.
		b.pdl0[i].SetSetting(cfg.PDLStages / 2)
		b.pdl1[i].SetSetting(cfg.PDLStages / 2)
	}
	b.applySkew()
	return b, nil
}

// MustNewBoard is NewBoard that panics on error.
func MustNewBoard(design *core.Design, master *rng.Source, id int, cfg Config) *Board {
	b, err := NewBoard(design, master, id, cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Device exposes the underlying PUF device (for measurement campaigns).
func (b *Board) Device() *core.Device { return b.dev }

// applySkew pushes the net per-bit skew (board mismatch + PDL differential)
// into the device.
func (b *Board) applySkew() {
	bits := len(b.boardSkew)
	skew := make([]float64, bits)
	for i := 0; i < bits; i++ {
		skew[i] = b.boardSkew[i] + b.pdl1[i].DelayPs() - b.pdl0[i].DelayPs()
	}
	b.dev.SetExtraSkewPs(skew)
}

// BitBias measures, per response bit, the fraction of ones over n random
// challenges (the calibration observable).
func (b *Board) BitBias(n int, src *rng.Source) []float64 {
	bits := b.dev.Design().ResponseBits()
	ones := make([]float64, bits)
	for k := 0; k < n; k++ {
		r := b.dev.RawResponse(b.dev.Design().ExpandChallenge(src.Uint64(), 0))
		for i, bit := range r {
			ones[i] += float64(bit)
		}
	}
	for i := range ones {
		ones[i] /= float64(n)
	}
	return ones
}

// CalibrationReport summarises one Calibrate run.
type CalibrationReport struct {
	Iterations   int
	InitialBias  []float64
	FinalBias    []float64
	MaxResidual  float64 // max |bias-0.5| after calibration
	MeanResidual float64
}

// Calibrate tunes the PDL pairs so each arbiter produces 0 and 1 about
// equally often over random challenges, per the procedure of Majzoobi et
// al.: measure per-bit bias, nudge the corresponding delay line, repeat.
// A response bit is 1 when ALU 0 wins, so excess ones mean the ALU1 path
// (plus skew) is too slow: delay ALU 0 or undelay ALU 1.
func (b *Board) Calibrate(iterations, challengesPerIter int, src *rng.Source) CalibrationReport {
	report := CalibrationReport{Iterations: iterations}
	report.InitialBias = b.BitBias(challengesPerIter, src.Sub("init"))
	for it := 0; it < iterations; it++ {
		bias := b.BitBias(challengesPerIter, src.SubN("iter", it))
		for i, p := range bias {
			dev := p - 0.5
			step := int(dev * 20)
			if step == 0 {
				continue
			}
			// Too many ones → ALU0 arriving too early → enable more ALU0
			// delay stages; prefer the line with headroom.
			if step > 0 {
				if b.pdl0[i].Setting() < b.pdl0[i].Stages() {
					b.pdl0[i].Adjust(step)
				} else {
					b.pdl1[i].Adjust(-step)
				}
			} else {
				if b.pdl1[i].Setting() < b.pdl1[i].Stages() {
					b.pdl1[i].Adjust(-step)
				} else {
					b.pdl0[i].Adjust(step)
				}
			}
		}
		b.applySkew()
	}
	report.FinalBias = b.BitBias(challengesPerIter, src.Sub("final"))
	for _, p := range report.FinalBias {
		d := p - 0.5
		if d < 0 {
			d = -d
		}
		if d > report.MaxResidual {
			report.MaxResidual = d
		}
		report.MeanResidual += d
	}
	report.MeanResidual /= float64(len(report.FinalBias))
	return report
}
