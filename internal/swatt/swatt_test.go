package swatt

import (
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/ecc"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
)

func testParams() Params {
	return Params{MemWords: 1024, Chunks: 4, BlocksPerChunk: 2, PRG: PRGMix32}
}

func zeroPUF(seed uint32) (uint32, error) { return 0, nil }

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{MemWords: 1000, Chunks: 1, BlocksPerChunk: 1},          // not a power of 2
		{MemWords: 1024, Chunks: 0, BlocksPerChunk: 1},          // no chunks
		{MemWords: 1024, Chunks: 1, BlocksPerChunk: 0},          // no blocks
		{MemWords: 1024, Chunks: 1, BlocksPerChunk: 1, PRG: 99}, // bad PRG
		{MemWords: -4, Chunks: 1, BlocksPerChunk: 1},            // negative
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
	if got := DefaultParams().Rounds(); got != 64*4*8 {
		t.Errorf("Rounds = %d", got)
	}
}

func TestChecksumDeterministic(t *testing.T) {
	p := testParams()
	mem := make([]uint32, p.MemWords)
	src := rng.New(1)
	for i := range mem {
		mem[i] = src.Uint32()
	}
	a, err := Checksum(mem, 42, p, zeroPUF)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Checksum(mem, 42, p, zeroPUF)
	if a != b {
		t.Fatal("checksum not deterministic")
	}
}

func TestChecksumSensitiveToMemory(t *testing.T) {
	// Coverage needs Rounds >> N·ln N: 32×8×8 = 2048 rounds over 256 words
	// leaves P(word unsampled) ≈ e^-8.
	p := Params{MemWords: 256, Chunks: 32, BlocksPerChunk: 8, PRG: PRGMix32}
	mem := make([]uint32, p.MemWords)
	src := rng.New(2)
	for i := range mem {
		mem[i] = src.Uint32()
	}
	ref, _ := Checksum(mem, 42, p, zeroPUF)
	// Flip one bit anywhere: the response must change (with these round
	// counts every word is expected to be sampled multiple times).
	flips := 0
	for trial := 0; trial < 20; trial++ {
		addr := src.Intn(p.MemWords)
		mem[addr] ^= 1 << uint(trial%32)
		got, _ := Checksum(mem, 42, p, zeroPUF)
		mem[addr] ^= 1 << uint(trial%32)
		if got != ref {
			flips++
		}
	}
	if flips < 18 {
		t.Errorf("only %d/20 single-bit memory changes altered the checksum", flips)
	}
}

func TestChecksumSensitiveToNonce(t *testing.T) {
	p := testParams()
	mem := make([]uint32, p.MemWords)
	a, _ := Checksum(mem, 1, p, zeroPUF)
	b, _ := Checksum(mem, 2, p, zeroPUF)
	if a == b {
		t.Error("different nonces gave identical checksums")
	}
}

func TestChecksumSensitiveToPUFOutput(t *testing.T) {
	p := testParams()
	mem := make([]uint32, p.MemWords)
	a, _ := Checksum(mem, 7, p, func(uint32) (uint32, error) { return 0x1111, nil })
	b, _ := Checksum(mem, 7, p, func(uint32) (uint32, error) { return 0x2222, nil })
	if a == b {
		t.Error("different PUF outputs gave identical checksums")
	}
}

func TestChecksumPUFSeedsDependOnPriorZ(t *testing.T) {
	// The z folded into x must change subsequent PUF challenge seeds —
	// the entanglement that defeats precomputing all challenges.
	p := testParams()
	mem := make([]uint32, p.MemWords)
	var seeds1, seeds2 []uint32
	Checksum(mem, 7, p, func(s uint32) (uint32, error) { seeds1 = append(seeds1, s); return 0xAAAA, nil })
	Checksum(mem, 7, p, func(s uint32) (uint32, error) { seeds2 = append(seeds2, s); return 0xBBBB, nil })
	if seeds1[0] != seeds2[0] {
		t.Error("first seed should not depend on z")
	}
	if seeds1[1] == seeds2[1] {
		t.Error("second seed should depend on the first z")
	}
}

func TestChecksumErrors(t *testing.T) {
	p := testParams()
	if _, err := Checksum(make([]uint32, 10), 1, p, zeroPUF); err == nil {
		t.Error("short memory accepted")
	}
	bad := p
	bad.MemWords = 1000
	if _, err := Checksum(make([]uint32, 1024), 1, bad, zeroPUF); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Checksum(make([]uint32, 1024), 1, p, func(uint32) (uint32, error) {
		return 0, errTest
	}); err == nil {
		t.Error("PUF error not propagated")
	}
}

var errTest = errType{}

type errType struct{}

func (errType) Error() string { return "test error" }

func TestTFuncPRGDiffers(t *testing.T) {
	// With non-uniform memory the traversal order matters, so different
	// PRGs must yield different checksums. (Over all-zero memory the
	// checksum is PRG-independent by construction.)
	p := testParams()
	mem := make([]uint32, p.MemWords)
	src := rng.New(4)
	for i := range mem {
		mem[i] = src.Uint32()
	}
	a, _ := Checksum(mem, 3, p, zeroPUF)
	pT := p
	pT.PRG = PRGTFunc
	b, _ := Checksum(mem, 3, pT, zeroPUF)
	if a == b {
		t.Error("Mix32 and T-function PRGs gave identical checksums")
	}
}

func TestFoldResponse(t *testing.T) {
	a := FoldResponse([8]uint32{1, 2, 3, 4, 5, 6, 7, 8})
	b := FoldResponse([8]uint32{1, 2, 3, 4, 5, 6, 7, 9})
	if a == b {
		t.Error("fold insensitive to state")
	}
}

func TestGenerateProgramAssembles(t *testing.T) {
	for _, prg := range []PRG{PRGMix32, PRGTFunc} {
		p := testParams()
		p.PRG = prg
		src, err := GenerateProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := mcu.Assemble(src)
		if err != nil {
			t.Fatalf("PRG %d: %v", prg, err)
		}
		if len(prog.Words) < 100 {
			t.Errorf("PRG %d: program suspiciously small (%d words)", prg, len(prog.Words))
		}
	}
}

func TestBuildImageLayout(t *testing.T) {
	p := testParams()
	payload := []uint32{0xAA, 0xBB, 0xCC}
	im, err := BuildImage(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	l := im.Layout
	if l.PayloadAddr != l.ProgWords {
		t.Error("payload must follow the program")
	}
	if im.Mem[l.PayloadAddr] != 0xAA || im.Mem[l.PayloadAddr+2] != 0xCC {
		t.Error("payload not copied")
	}
	if l.NonceAddr != p.MemWords || l.TotalWords != p.MemWords+26 {
		t.Errorf("scratch layout wrong: %+v", l)
	}
	if len(im.Mem) != l.TotalWords {
		t.Errorf("image size %d, want %d", len(im.Mem), l.TotalWords)
	}
}

func TestBuildImageRejectsOversizedPayload(t *testing.T) {
	p := Params{MemWords: 512, Chunks: 1, BlocksPerChunk: 1}
	if _, err := BuildImage(p, make([]uint32, 512)); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestImageClone(t *testing.T) {
	im, _ := BuildImage(testParams(), nil)
	cp := im.Clone()
	cp.Mem[0] = 0xdeadbeef
	if im.Mem[0] == 0xdeadbeef {
		t.Error("Clone shares memory")
	}
}

// devicePUF adapts a core pipeline to the Checksum callback, mirroring what
// the verifier does with recovered z values.
func devicePUF(t *testing.T, pl *core.Pipeline) func(uint32) (uint32, error) {
	return func(seed uint32) (uint32, error) {
		out, err := pl.Query(uint64(seed))
		if err != nil {
			return 0, err
		}
		return uint32(out.ZWord()), nil
	}
}

// TestMCUChecksumMatchesNative is the keystone test of the prover
// substrate: the generated assembly, executed on the simulated CPU with the
// real PUF port, must produce exactly the checksum the native Go
// implementation computes when fed the same PUF outputs (recovered by the
// verifier pipeline from the port's helper-data stream).
func TestMCUChecksumMatchesNative(t *testing.T) {
	for _, prg := range []PRG{PRGMix32, PRGTFunc} {
		p := testParams()
		p.PRG = prg
		cfg := core.DefaultConfig()
		cfg.Width = 16
		dev := core.MustNewDevice(core.MustNewDesign(cfg), rng.New(11), 0)
		port := mcu.MustNewDevicePort(dev)
		port.SetClock(50e6)

		payload := make([]uint32, 100)
		src := rng.New(12)
		for i := range payload {
			payload[i] = src.Uint32()
		}
		im, err := BuildImage(p, payload)
		if err != nil {
			t.Fatal(err)
		}
		const nonce = 0xfeed0042

		// Prover: run the assembly on the MCU.
		proverIm := im.Clone()
		proverIm.Layout.SetNonce(proverIm.Mem, nonce)
		cpu := mcu.New(proverIm.Mem, 50e6, port)
		if err := cpu.Run(100_000_000); err != nil {
			t.Fatalf("PRG %d: prover run: %v", prg, err)
		}
		proverC := proverIm.Layout.ReadResult(proverIm.Mem)
		helpers := port.DrainHelpers()
		if len(helpers) != 8*p.Chunks {
			t.Fatalf("PRG %d: %d helper words, want %d", prg, len(helpers), 8*p.Chunks)
		}

		// Verifier: native checksum over the expected memory, recovering
		// each z from the emulator and the prover's helper stream.
		vp := core.MustNewVerifierPipeline(dev.Emulator())
		idx := 0
		verifierC, err := Checksum(im.Layout.AttestedRegion(im.Mem), nonce, p, func(seed uint32) (uint32, error) {
			h := helpers[idx*8 : idx*8+8]
			idx++
			z, err := vp.Recover(uint64(seed), h)
			if err != nil {
				return 0, err
			}
			return uint32(ecc.BitsToWord(z)), nil
		})
		if err != nil {
			t.Fatalf("PRG %d: verifier checksum: %v", prg, err)
		}
		if proverC != verifierC {
			t.Fatalf("PRG %d:\nprover   %08x\nverifier %08x", prg, proverC, verifierC)
		}
	}
}

func TestExpectedCyclesDataIndependent(t *testing.T) {
	p := testParams()
	imA, _ := BuildImage(p, []uint32{1, 2, 3})
	imB, _ := BuildImage(p, []uint32{9, 9, 9, 9, 9, 9})
	a, err := ExpectedCycles(imA, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExpectedCycles(imB, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cycle count depends on payload: %d vs %d", a, b)
	}
	if a == 0 {
		t.Error("zero expected cycles")
	}
}

func TestExpectedCyclesMatchesRealRun(t *testing.T) {
	p := testParams()
	cfg := core.DefaultConfig()
	cfg.Width = 16
	dev := core.MustNewDevice(core.MustNewDesign(cfg), rng.New(13), 0)
	port := mcu.MustNewDevicePort(dev)
	port.SetClock(50e6)
	im, _ := BuildImage(p, nil)
	want, err := ExpectedCycles(im, port.Votes)
	if err != nil {
		t.Fatal(err)
	}
	run := im.Clone()
	run.Layout.SetNonce(run.Mem, 123)
	cpu := mcu.New(run.Mem, 50e6, port)
	if err := cpu.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if cpu.Cycles != want {
		t.Errorf("real run took %d cycles, dry run predicted %d", cpu.Cycles, want)
	}
}
