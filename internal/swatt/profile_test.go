package swatt

import (
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
)

// TestProfileAttestationBreakdown measures where the attestation program
// spends its cycles: the checksum block loop must dominate, with the PUF
// query regions (genloop/qloop) visible — the structure the δ engineering
// relies on.
func TestProfileAttestationBreakdown(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Width = 16
	dev := core.MustNewDevice(core.MustNewDesign(cfg), rng.New(120), 0)
	port := mcu.MustNewDevicePort(dev)
	port.SetClock(50e6)
	params := Params{MemWords: 1024, Chunks: 2, BlocksPerChunk: 8, PRG: PRGMix32}
	im, err := BuildImage(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := im.Clone()
	run.Layout.SetNonce(run.Mem, 7)
	c := mcu.New(run.Mem, 50e6, port)
	prof, err := mcu.ProfileRun(c, im.Program.Symbols, 1<<32)
	if err != nil {
		t.Fatal(err)
	}
	block := prof.Region("blockloop")
	gen := prof.Region("genloop")
	q := prof.Region("qloop")
	if block == nil || gen == nil || q == nil {
		t.Fatalf("expected regions missing:\n%s", prof.Format())
	}
	if block.Cycles <= gen.Cycles {
		t.Errorf("checksum rounds (%d cycles) should outweigh operand generation (%d)",
			block.Cycles, gen.Cycles)
	}
	t.Logf("attestation cycle breakdown:\n%s", prof.Format())
}
