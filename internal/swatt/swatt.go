// Package swatt implements the software-based attestation algorithm of
// PUFatt's Section 3: a SWATT/SCUBA-style checksum (Seshadri et al.) over
// the prover's memory, adapted — exactly as the paper describes — to (a)
// generate PUF challenge seeds from the running checksum state and (b) take
// the PUF() output z as an additional input to the compression function.
//
// The algorithm exists in two bit-identical implementations:
//
//   - Checksum: a native Go reference, used by the verifier (with PUF
//     outputs recovered through core.VerifierPipeline) and by tests.
//   - GenerateProgram/BuildImage: an MCU assembly program emitted for the
//     prover CPU of package mcu, which computes the same checksum over its
//     own program memory, querying the PUF with pstart/add/pend.
//
// Checksum structure. State is eight 32-bit words c0..c7 plus a PRG word x,
// all derived from the verifier's nonce. Each round k (j = k mod 8):
//
//	x      = PRG(x)
//	addr   = x mod N          (N, the attested size, is a power of two)
//	c[j]   = ROR32(c[j] + (mem[addr] XOR c[(j+1) mod 8]), 1)
//
// After every chunk of BlocksPerChunk×8 rounds the prover queries the PUF
// with seed = x XOR c0 and folds the 16/32-bit output z into both c0 and x —
// entangling the remaining memory traversal with the device's physical
// response, which is what defeats checksum pre-computation and outsourcing.
package swatt

import (
	"fmt"
	"math/bits"

	"pufatt/internal/core"
)

// PRG selects the address-generator function (an ablation axis in
// DESIGN.md).
type PRG int

// PRG choices.
const (
	// PRGMix32 uses x = Mix32(x + golden ratio): strong mixing, ~11
	// instructions per round on the MCU.
	PRGMix32 PRG = iota
	// PRGTFunc uses the Pioneer/SCUBA T-function x = x + (x² OR 5):
	// weaker mixing, 3 instructions per round.
	PRGTFunc
)

// golden is the additive constant of the Mix32 PRG.
const golden = 0x9e3779b9

// initStep spaces the initial state derivation; c[j] = Mix32(nonce +
// (j+1)·initStep).
const initStep = 0x3c6ef372

// Params configures the checksum.
type Params struct {
	// MemWords is the attested memory size N in 32-bit words; must be a
	// power of two and large enough for the generated program plus
	// payload.
	MemWords int
	// Chunks is the number of PUF-entangled chunks.
	Chunks int
	// BlocksPerChunk is the number of 8-round blocks per chunk.
	BlocksPerChunk int
	// PRG selects the address generator.
	PRG PRG
}

// Rounds returns the total number of checksum rounds.
func (p Params) Rounds() int { return p.Chunks * p.BlocksPerChunk * 8 }

// Validate checks structural requirements.
func (p Params) Validate() error {
	if p.MemWords <= 0 || p.MemWords&(p.MemWords-1) != 0 {
		return fmt.Errorf("swatt: attested size %d is not a power of two", p.MemWords)
	}
	if p.Chunks < 1 || p.BlocksPerChunk < 1 {
		return fmt.Errorf("swatt: need at least one chunk and one block (have %d, %d)", p.Chunks, p.BlocksPerChunk)
	}
	if p.PRG != PRGMix32 && p.PRG != PRGTFunc {
		return fmt.Errorf("swatt: unknown PRG %d", p.PRG)
	}
	return nil
}

// DefaultParams returns the parameters used by the protocol examples and
// benches: 4096 attested words, 64 chunks of 4 blocks (2048 rounds, 64 PUF
// invocations).
func DefaultParams() Params {
	return Params{MemWords: 4096, Chunks: 64, BlocksPerChunk: 4, PRG: PRGMix32}
}

// step advances the PRG.
func (p Params) step(x uint32) uint32 {
	switch p.PRG {
	case PRGTFunc:
		return x + (x*x | 5)
	default:
		return core.Mix32(x + golden)
	}
}

// InitState derives the initial checksum state from the nonce.
func InitState(nonce uint32) (c [8]uint32, x uint32) {
	for j := 0; j < 8; j++ {
		c[j] = core.Mix32(nonce + uint32(j+1)*initStep)
	}
	return c, nonce
}

// Checksum computes the attestation response over mem (length MemWords)
// with the given nonce. The puf callback is invoked once per chunk with the
// challenge seed and must return the 32-bit PUF() output z (the verifier
// recovers it from helper data; tests wire it to a device pipeline).
func Checksum(mem []uint32, nonce uint32, p Params, puf func(seed uint32) (uint32, error)) ([8]uint32, error) {
	if err := p.Validate(); err != nil {
		return [8]uint32{}, err
	}
	if len(mem) < p.MemWords {
		return [8]uint32{}, fmt.Errorf("swatt: memory of %d words, need %d", len(mem), p.MemWords)
	}
	mask := uint32(p.MemWords - 1)
	c, x := InitState(nonce)
	k := 0
	for chunk := 0; chunk < p.Chunks; chunk++ {
		for b := 0; b < p.BlocksPerChunk; b++ {
			for j := 0; j < 8; j++ {
				x = p.step(x)
				w := mem[x&mask]
				c[j] = bits.RotateLeft32(c[j]+(w^c[(j+1)&7]), -1)
				k++
			}
		}
		seed := x ^ c[0]
		z, err := puf(seed)
		if err != nil {
			return [8]uint32{}, fmt.Errorf("swatt: chunk %d: %w", chunk, err)
		}
		c[0] ^= z
		x ^= z
	}
	return c, nil
}

// FoldResponse compresses the eight state words into a single 64-bit
// attestation response tag for transmission and comparison.
func FoldResponse(c [8]uint32) uint64 {
	lo := c[0] ^ bits.RotateLeft32(c[2], 8) ^ bits.RotateLeft32(c[4], 16) ^ bits.RotateLeft32(c[6], 24)
	hi := c[1] ^ bits.RotateLeft32(c[3], 8) ^ bits.RotateLeft32(c[5], 16) ^ bits.RotateLeft32(c[7], 24)
	return uint64(hi)<<32 | uint64(lo)
}
