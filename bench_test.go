package pufatt

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`): Figure 3 (inter-chip HD),
// Figure 4 (intra-chip HD + FNR), Table 1 (FPGA resources), the Section 4.1
// FPGA two-board measurement, and the Section 4.2 security analyses — plus
// the ablation benches DESIGN.md calls out. Custom metrics carry the
// scientific quantities (bits of Hamming distance, accuracies, cycle
// counts); ns/op carries the cost of producing them.

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"pufatt/internal/attacks"
	"pufatt/internal/attest"
	"pufatt/internal/attest/cluster"
	"pufatt/internal/bch"
	"pufatt/internal/core"
	crpstore "pufatt/internal/crp/store"
	"pufatt/internal/delay"
	"pufatt/internal/ecc"
	"pufatt/internal/experiments"
	"pufatt/internal/fpga"
	"pufatt/internal/mcu"
	"pufatt/internal/netlist"
	"pufatt/internal/obfuscate"
	"pufatt/internal/rng"
	"pufatt/internal/sim"
	"pufatt/internal/slender"
	"pufatt/internal/stats"
	"pufatt/internal/swatt"
	"pufatt/internal/telemetry"
)

// --- Figure 3 ---

func BenchmarkFigure3InterChipHD(b *testing.B) {
	res, err := experiments.Figure3(core.DefaultConfig(), 2, b.N, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.RawMean(), "raw-HD-bits")
	b.ReportMetric(res.ObfMean(), "obf-HD-bits")
	b.ReportMetric(res.PaperRawMean, "paper-raw-bits")
	b.ReportMetric(res.PaperObfMean, "paper-obf-bits")
}

// --- Figure 4 ---

func BenchmarkFigure4IntraChipHD(b *testing.B) {
	res, err := experiments.Figure4(core.DefaultConfig(), b.N, 2, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.MeanBits, "intra-HD-bits")
	b.ReportMetric(res.PaperMeanBits, "paper-bits")
	b.ReportMetric(100*res.PerBitErr, "bit-err-%")
}

func BenchmarkFigure4FalseNegativeRate(b *testing.B) {
	// Monte-Carlo FNR of the sketch at the measured per-bit error, against
	// the analytic models reported by Figure4.
	sketch := ecc.NewSketch(ecc.NewReedMuller15())
	src := rng.New(3)
	p := 0.0121 // 5-vote majority error rate at the calibrated jitter
	ref := make([]uint8, 32)
	src.Bits(ref)
	fails := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		noisy := append([]uint8(nil), ref...)
		for j := range noisy {
			if src.Float64() < p {
				noisy[j] ^= 1
			}
		}
		h, _ := sketch.Generate(noisy)
		rec, _, err := sketch.Recover(ref, h)
		if err != nil {
			fails++
			continue
		}
		if stats.HammingDistance(rec, noisy) != 0 {
			fails++
		}
	}
	b.ReportMetric(float64(fails)/float64(b.N), "mc-FNR")
	b.ReportMetric(ecc.AnalyticFNR(32, 7, p), "analytic-FNR-t7")
	b.ReportMetric(1.53e-7, "paper-FNR")
}

// --- Table 1 ---

func BenchmarkTable1ResourceEstimate(b *testing.B) {
	var rows []fpga.ComponentRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = fpga.Table1(16)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Component {
		case "ALU PUF":
			b.ReportMetric(float64(r.Estimate.LUTs), "alupuf-LUTs")
		case "PDL logic":
			b.ReportMetric(float64(r.Estimate.LUTs), "pdl-LUTs")
		case "Obfuscation logic":
			b.ReportMetric(float64(r.Estimate.LUTs), "obf-LUTs")
		}
	}
}

// --- Section 4.1 FPGA measurement ---

func BenchmarkFPGAMeasuredHD(b *testing.B) {
	res, err := experiments.FPGAMeasurement(fpga.DefaultConfig(), b.N, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.InterRaw.Mean(), "inter-raw-bits")
	b.ReportMetric(res.InterObf.Mean(), "inter-obf-bits")
	b.ReportMetric(res.Intra.Mean(), "intra-bits")
}

// --- Section 4.2: protocol and attacks ---

// protocolFixture builds the honest stack once per benchmark.
func protocolFixture(b *testing.B, params swatt.Params) (*attest.Prover, *attest.Verifier, attest.Link) {
	b.Helper()
	dev, err := core.NewDevice(core.MustNewDesign(core.DefaultConfig()), rng.New(11), 0)
	if err != nil {
		b.Fatal(err)
	}
	port, err := mcu.NewDevicePort(dev)
	if err != nil {
		b.Fatal(err)
	}
	image, err := swatt.BuildImage(params, make([]uint32, 256))
	if err != nil {
		b.Fatal(err)
	}
	prover := attest.NewProver(image.Clone(), port, 1)
	prover.TuneClock(0.98)
	verifier, err := attest.NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
	if err != nil {
		b.Fatal(err)
	}
	link := attest.DefaultLink()
	verifier.AllowNetwork(link)
	return prover, verifier, link
}

func BenchmarkAttestationProtocol(b *testing.B) {
	params := swatt.Params{MemWords: 1024, Chunks: 8, BlocksPerChunk: 8, PRG: swatt.PRGMix32}
	prover, verifier, link := protocolFixture(b, params)
	accepted := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := attest.RunSession(verifier, prover, link)
		if err != nil {
			b.Fatal(err)
		}
		if res.Accepted {
			accepted++
		}
	}
	b.ReportMetric(float64(accepted)/float64(b.N), "accept-rate")
	b.ReportMetric(verifier.Delta()*1e3, "delta-ms")
}

// BenchmarkAttestationProtocolProfiled re-runs the protocol hot path with
// the continuous profiler in its two steady states: "armed" (capture ring
// enabled and the periodic ticker running at the default one-minute
// cadence — the everyday production configuration, which must cost nothing
// between captures) and "capturing" (a CPU profile actively sampling for
// the whole run — the worst case inside the 250 ms capture window, which
// the default duty cycle enters ~0.4% of the time). Compare ns/op against
// BenchmarkAttestationProtocol for the overhead at each state.
func BenchmarkAttestationProtocolProfiled(b *testing.B) {
	params := swatt.Params{MemWords: 1024, Chunks: 8, BlocksPerChunk: 8, PRG: swatt.PRGMix32}
	run := func(b *testing.B, prover *attest.Prover, verifier *attest.Verifier, link attest.Link) {
		accepted := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := attest.RunSession(verifier, prover, link)
			if err != nil {
				b.Fatal(err)
			}
			if res.Accepted {
				accepted++
			}
		}
		b.ReportMetric(float64(accepted)/float64(b.N), "accept-rate")
	}
	b.Run("armed", func(b *testing.B) {
		prover, verifier, link := protocolFixture(b, params)
		p := telemetry.NewProfiler()
		p.SetDir(b.TempDir())
		stop := p.Start(telemetry.DefaultProfileInterval)
		defer stop()
		run(b, prover, verifier, link)
	})
	b.Run("capturing", func(b *testing.B) {
		prover, verifier, link := protocolFixture(b, params)
		p := telemetry.NewProfiler()
		p.SetDir(b.TempDir())
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_, _, _ = p.Capture("bench", telemetry.CaptureMeta{})
			}
		}()
		run(b, prover, verifier, link)
		b.StopTimer()
		close(done)
		wg.Wait()
	})
}

func BenchmarkOverclockingAttack(b *testing.B) {
	dev, _ := core.NewDevice(core.MustNewDesign(core.DefaultConfig()), rng.New(12), 0)
	port, _ := mcu.NewDevicePort(dev)
	b.ResetTimer()
	pts := attacks.OverclockSweep(dev, port, []float64{1.0, 1.5, 2.0, 2.5}, b.N, rng.New(13))
	b.ReportMetric(pts[0].InvalidBitFraction, "invalid-frac-x1.0")
	b.ReportMetric(pts[2].InvalidBitFraction, "invalid-frac-x2.0")
	b.ReportMetric(pts[3].ResponseHD, "HD-bits-x2.5")
}

func BenchmarkOracleProxyAttack(b *testing.B) {
	link := attest.DefaultLink()
	var t float64
	for i := 0; i < b.N; i++ {
		t = attacks.OracleAttackTime(64, link)
	}
	b.ReportMetric(t*1e3, "attack-ms-64chunks")
}

func BenchmarkMLModelingAttack(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Width = 16
	dev, _ := core.NewDevice(core.MustNewDesign(cfg), rng.New(14), 0)
	oracle, _ := attacks.NewObfuscatedOracle(dev)
	var rawAcc, obfAcc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := attacks.TrainRawModel(dev, 1500, 15, rng.New(15), 0)
		rawAcc = m.AccuracyRaw(dev, 300, rng.New(16), 0)
		mo := attacks.TrainObfuscatedModel(oracle, 1000, 15, rng.New(17), 0)
		obfAcc = mo.AccuracyObfuscated(oracle, 200, rng.New(18), 0)
	}
	b.ReportMetric(100*rawAcc, "raw-acc-%")
	b.ReportMetric(100*obfAcc, "obf-acc-%")
}

// --- Ablations (DESIGN.md) ---

func BenchmarkAblationTimingEngines(b *testing.B) {
	d := core.MustNewDesign(core.DefaultConfig())
	dev := core.MustNewDevice(d, rng.New(20), 0)
	nl := d.Datapath().Net
	m := d.DelayModel()
	chip := dev
	_ = chip
	tab := delay.BuildTable(m, nl, make([]float64, len(nl.Gates)), nil, delay.Nominal())
	in := make([]uint8, len(nl.Inputs))
	src := rng.New(21)

	b.Run("levelized", func(b *testing.B) {
		eng := sim.NewEngine(nl, tab)
		for i := 0; i < b.N; i++ {
			src.Bits(in)
			eng.Run(in)
		}
	})
	b.Run("event-driven", func(b *testing.B) {
		es := sim.NewEventSim(nl, tab)
		zero := make([]uint8, len(nl.Inputs))
		for i := 0; i < b.N; i++ {
			src.Bits(in)
			es.Settle(zero)
			es.Apply(in)
			es.Run()
		}
	})
}

func BenchmarkAblationDecoders(b *testing.B) {
	code := ecc.NewReedMuller15()
	src := rng.New(22)
	syndromes := make([]uint64, 256)
	for i := range syndromes {
		var e uint64
		for _, pos := range src.Perm(32)[:5] {
			e |= 1 << uint(pos)
		}
		syndromes[i] = code.Syndrome(e)
	}
	b.Run("coset-ML", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			code.CosetLeader(syndromes[i%len(syndromes)])
		}
	})
	b.Run("bounded-t7", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			code.DecodeBounded(syndromes[i%len(syndromes)], 7) //nolint:errcheck
		}
	})
	b.Run("bch31-BM-chien", func(b *testing.B) {
		bchCode := bch.MustNew(5, 7)
		msg := make([]uint8, bchCode.K())
		cw, _ := bchCode.Encode(msg)
		corrupted := append([]uint8(nil), cw...)
		corrupted[3] ^= 1
		corrupted[17] ^= 1
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := bchCode.Decode(corrupted); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationObfuscation(b *testing.B) {
	// Inter-chip HD with no obfuscation, phase-1 only (fold), and the full
	// two-phase network — the quality each stage buys.
	d := core.MustNewDesign(core.DefaultConfig())
	master := rng.New(23)
	devA := core.MustNewDevice(d, master, 0)
	devB := core.MustNewDevice(d, master, 1)
	net := obfuscate.MustNew(32)
	src := rng.New(24)
	var raw, fold, full stats.Summary
	group := func(dev *core.Device, seed uint64) [][]uint8 {
		rs := make([][]uint8, 8)
		for j := range rs {
			rs[j] = dev.RawResponseCopy(d.ExpandChallenge(seed, j))
		}
		return rs
	}
	fold1 := func(rs [][]uint8) []uint8 {
		out := make([]uint8, 32)
		for i := 0; i < 16; i++ {
			out[i] = rs[0][i] ^ rs[0][i+16]
			out[16+i] = rs[1][i] ^ rs[1][i+16]
		}
		return out
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := src.Uint64()
		ga, gb := group(devA, seed), group(devB, seed)
		raw.Add(float64(stats.HammingDistance(ga[0], gb[0])))
		fold.Add(float64(stats.HammingDistance(fold1(ga), fold1(gb))))
		full.Add(float64(stats.HammingDistance(net.MustApply(ga), net.MustApply(gb))))
	}
	b.ReportMetric(raw.Mean(), "raw-bits")
	b.ReportMetric(fold.Mean(), "phase1-bits")
	b.ReportMetric(full.Mean(), "two-phase-bits")
}

func BenchmarkAblationPRG(b *testing.B) {
	// Checksum cycle cost per PRG choice (the speed/мixing trade).
	for _, prg := range []struct {
		name string
		prg  swatt.PRG
	}{{"mix32", swatt.PRGMix32}, {"tfunc", swatt.PRGTFunc}} {
		b.Run(prg.name, func(b *testing.B) {
			p := swatt.Params{MemWords: 1024, Chunks: 2, BlocksPerChunk: 8, PRG: prg.prg}
			im, err := swatt.BuildImage(p, nil)
			if err != nil {
				b.Fatal(err)
			}
			cycles, err := swatt.ExpectedCycles(im, 5)
			if err != nil {
				b.Fatal(err)
			}
			mem := im.Layout.AttestedRegion(im.Mem)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := swatt.Checksum(mem, uint32(i), p, func(uint32) (uint32, error) { return 0, nil }); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cycles), "mcu-cycles")
		})
	}
}

func BenchmarkAblationVerification(b *testing.B) {
	// Emulation vs CRP database: per-authentication verifier cost and the
	// database's storage burden.
	d := core.MustNewDesign(core.DefaultConfig())
	dev := core.MustNewDevice(d, rng.New(25), 0)
	pl := core.MustNewPipeline(dev)
	seeds := make([]uint64, 512)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	db, err := EnrollCRPs(dev, seeds)
	if err != nil {
		b.Fatal(err)
	}
	out, err := pl.Query(seeds[0])
	if err != nil {
		b.Fatal(err)
	}
	b.Run("emulation", func(b *testing.B) {
		vp := core.MustNewVerifierPipeline(dev.Emulator())
		for i := 0; i < b.N; i++ {
			if _, err := vp.Recover(seeds[0], out.Helpers); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(0, "storage-bytes")
	})
	b.Run("crp-database", func(b *testing.B) {
		vp, err := core.NewVerifierPipelineFrom(db)
		if err != nil {
			b.Fatal(err)
		}
		db.Claim(seeds[0]) //nolint:errcheck
		for i := 0; i < b.N; i++ {
			if _, err := vp.Recover(seeds[0], out.Helpers); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(db.StorageBytes()), "storage-bytes")
	})
}

func BenchmarkAblationAdderArchitecture(b *testing.B) {
	// PUF quality of the paper's ripple-carry race vs a carry-lookahead
	// datapath: CLA's shallow, uniform paths accumulate less variation and
	// should extract less uniqueness per bit.
	measure := func(b *testing.B, kind netlist.AdderKind) (inter, intra float64) {
		cfg := core.DefaultConfig()
		cfg.Adder = kind
		d := core.MustNewDesign(cfg)
		master := rng.New(40)
		devA := core.MustNewDevice(d, master, 0)
		devB := core.MustNewDevice(d, master, 1)
		src := rng.New(41)
		var interS, intraS stats.Summary
		for i := 0; i < b.N; i++ {
			ch := d.ExpandChallenge(src.Uint64(), 0)
			ra := devA.RawResponseCopy(ch)
			rb := devB.RawResponseCopy(ch)
			interS.Add(float64(stats.HammingDistance(ra, rb)))
			intraS.Add(float64(stats.HammingDistance(ra, devA.RawResponse(ch))))
		}
		return interS.Mean(), intraS.Mean()
	}
	b.Run("ripple-carry", func(b *testing.B) {
		inter, intra := measure(b, netlist.AdderRCA)
		b.ReportMetric(inter, "inter-bits")
		b.ReportMetric(intra, "intra-bits")
	})
	b.Run("carry-lookahead", func(b *testing.B) {
		inter, intra := measure(b, netlist.AdderCLA)
		b.ReportMetric(inter, "inter-bits")
		b.ReportMetric(intra, "intra-bits")
	})
}

func BenchmarkAblationAging(b *testing.B) {
	// Reliability before wear, after a simulated decade of uniform wear
	// (stale enrollment), and after directed-aging burn-in (fresh
	// enrollment): the [13] response-tuning story.
	d := core.MustNewDesign(core.DefaultConfig())
	flipRate := func(dev *core.Device, refs map[uint64][]uint8) float64 {
		src := rng.New(42)
		var hd stats.Summary
		for i := 0; i < b.N; i++ {
			s := src.Uint64()
			ref, ok := refs[s]
			if !ok {
				continue
			}
			hd.Add(float64(stats.HammingDistance(ref, dev.RawResponse(d.ExpandChallenge(s, 0)))))
		}
		return hd.Mean() / 32
	}
	enroll := func(dev *core.Device) map[uint64][]uint8 {
		src := rng.New(42)
		refs := make(map[uint64][]uint8, b.N)
		for i := 0; i < b.N; i++ {
			s := src.Uint64()
			refs[s] = append([]uint8(nil), dev.NoiselessResponse(d.ExpandChallenge(s, 0))...)
		}
		return refs
	}
	dev := core.MustNewDevice(d, rng.New(43), 0)
	fresh := enroll(dev)
	b.ReportMetric(flipRate(dev, fresh), "err-fresh")
	dev.Age(87600, 0.5) // a decade at 50% duty, stale enrollment
	b.ReportMetric(flipRate(dev, fresh), "err-aged-stale")
	reenrolled := enroll(dev)
	b.ReportMetric(flipRate(dev, reenrolled), "err-aged-reenrolled")
	dev.ReinforcementAge(2000, 200) // directed burn-in + fresh enrollment
	burned := enroll(dev)
	b.ReportMetric(flipRate(dev, burned), "err-burned-in")
}

func BenchmarkAblationPipelineTiming(b *testing.B) {
	// Cycle cost of one attestation checksum under the flat vs 5-stage
	// pipelined CPU timing models (functionally identical; only CPI
	// accounting differs).
	p := swatt.Params{MemWords: 1024, Chunks: 2, BlocksPerChunk: 8, PRG: swatt.PRGMix32}
	im, err := swatt.BuildImage(p, nil)
	if err != nil {
		b.Fatal(err)
	}
	measure := func(pipelined bool) uint64 {
		cp := im.Clone()
		cp.Layout.SetNonce(cp.Mem, 1)
		cpu := mcu.New(cp.Mem, 1e6, &mcu.StubPort{Votes: 5})
		cpu.Pipelined = pipelined
		if err := cpu.Run(1 << 40); err != nil {
			b.Fatal(err)
		}
		return cpu.Cycles
	}
	var flat, piped uint64
	for i := 0; i < b.N; i++ {
		flat = measure(false)
		piped = measure(true)
	}
	b.ReportMetric(float64(flat), "flat-cycles")
	b.ReportMetric(float64(piped), "pipelined-cycles")
}

func BenchmarkSideChannelAttack(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Width = 16
	dev := core.MustNewDevice(core.MustNewDesign(cfg), rng.New(50), 0)
	oracle, err := attacks.NewObfuscatedOracle(dev)
	if err != nil {
		b.Fatal(err)
	}
	var aggregate, perBit, countered float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := attacks.TrainWithSideChannel(oracle, attacks.PowerModel{SigmaHW: 0.5}, 400, 10, rng.New(51))
		aggregate = attacks.SideChannelZAccuracy(m, oracle, 100, rng.New(52))
		m = attacks.TrainWithSideChannel(oracle, attacks.PowerModel{SigmaHW: 0.3, PerBit: true}, 400, 10, rng.New(53))
		perBit = attacks.SideChannelZAccuracy(m, oracle, 100, rng.New(54))
		m = attacks.TrainWithSideChannel(oracle, attacks.PowerModel{SigmaHW: 0.3, PerBit: true, ConstantWeight: true}, 400, 10, rng.New(55))
		countered = attacks.SideChannelZAccuracy(m, oracle, 100, rng.New(56))
	}
	b.ReportMetric(100*aggregate, "z-acc-aggregate-%")
	b.ReportMetric(100*perBit, "z-acc-perbit-%")
	b.ReportMetric(100*countered, "z-acc-countermeasure-%")
}

func BenchmarkSlenderAuthentication(b *testing.B) {
	d := core.MustNewDesign(core.DefaultConfig())
	dev := core.MustNewDevice(d, rng.New(60), 0)
	pr, err := slender.NewProver(dev, slender.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	v, err := slender.NewVerifier(dev.Emulator(), slender.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(61)
	accepted := 0
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := slender.Authenticate(pr, v, src)
		if err != nil {
			b.Fatal(err)
		}
		if out.Accepted {
			accepted++
		}
		frac = out.BestFrac
	}
	b.ReportMetric(float64(accepted)/float64(b.N), "accept-rate")
	b.ReportMetric(frac, "match-frac")
}

// --- microbenchmarks of the hot paths ---

// BenchmarkBatchEval measures the parallel batch engine's throughput at
// several worker counts over a fixed 256-challenge batch. The headline
// custom metric is gate evaluations per second; on a multi-core host the
// workers=4 line should run at least twice the workers=1 rate.
func BenchmarkBatchEval(b *testing.B) {
	d := core.MustNewDesign(core.DefaultConfig())
	dev := core.MustNewDevice(d, rng.New(35), 0)
	be := core.NewBatchEvaluator(dev)
	const batch = 256
	src := rng.New(36)
	challenges := core.ChallengeMatrix(d, batch)
	for k := range challenges {
		d.ExpandChallengeInto(challenges[k], src.Uint64(), 0)
	}
	dst := be.ResponseMatrix(batch)
	gatesPerBatch := float64(batch) * float64(len(d.Datapath().Net.Order))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				be.RawResponses(challenges, dst, workers)
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(gatesPerBatch*float64(b.N)/s, "gate-evals/s")
			}
		})
	}
}

// BenchmarkBitsliceEval pins the bitsliced engine's single-worker throughput
// through the full batch pipeline (transpose, 64-lane levelized pass, delta
// extraction, per-item noise), alongside the effective lane-eval rate.
func BenchmarkBitsliceEval(b *testing.B) {
	d := core.MustNewDesign(core.DefaultConfig())
	dev := core.MustNewDevice(d, rng.New(35), 0)
	dev.SetEvalEngine(core.EngineBitslice)
	be := core.NewBatchEvaluator(dev)
	const batch = 256
	src := rng.New(36)
	challenges := core.ChallengeMatrix(d, batch)
	for k := range challenges {
		d.ExpandChallengeInto(challenges[k], src.Uint64(), 0)
	}
	dst := be.ResponseMatrix(batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be.RawResponses(challenges, dst, 1)
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		evals := float64(batch) * float64(len(d.Datapath().Net.Order)) * float64(b.N)
		b.ReportMetric(evals/s, "gate-evals/s")
		b.ReportMetric(float64(batch)*float64(b.N)/s, "challenges/s")
	}
}

// BenchmarkLinearModelEval measures the linear-delay fast model through the
// same batch pipeline: after the one-time enrollment fit, each challenge is a
// windowed dot product per bit instead of a levelized netlist pass.
func BenchmarkLinearModelEval(b *testing.B) {
	d := core.MustNewDesign(core.DefaultConfig())
	dev := core.MustNewDevice(d, rng.New(35), 0)
	dev.SetEvalEngine(core.EngineLinear)
	be := core.NewBatchEvaluator(dev)
	const batch = 256
	src := rng.New(36)
	challenges := core.ChallengeMatrix(d, batch)
	for k := range challenges {
		d.ExpandChallengeInto(challenges[k], src.Uint64(), 0)
	}
	dst := be.ResponseMatrix(batch)
	be.RawResponses(challenges, dst, 1) // fit the model outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be.RawResponses(challenges, dst, 1)
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(batch)*float64(b.N)/s, "challenges/s")
	}
	m, err := core.FitLinearModel(dev, core.DefaultLinearModelConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(m.Agreement(), "gate-agreement")
}

// BenchmarkFigure4Engines runs the Figure 4 intra-chip experiment end to end
// under the scalar and the bitsliced engine: an A/B of the same science at
// both evaluation speeds (the numbers must agree bit-for-bit; only ns/op may
// differ).
func BenchmarkFigure4Engines(b *testing.B) {
	for _, eng := range []core.EvalEngine{core.EngineGate, core.EngineBitslice} {
		b.Run(eng.String(), func(b *testing.B) {
			prev := core.DefaultEvalEngine()
			core.SetDefaultEvalEngine(eng)
			defer core.SetDefaultEvalEngine(prev)
			res, err := experiments.Figure4(core.DefaultConfig(), b.N, 2, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MeanBits, "intra-HD-bits")
			b.ReportMetric(100*res.PerBitErr, "bit-err-%")
		})
	}
}

func BenchmarkRawResponse(b *testing.B) {
	d := core.MustNewDesign(core.DefaultConfig())
	dev := core.MustNewDevice(d, rng.New(30), 0)
	ch := d.ExpandChallenge(1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.RawResponse(ch)
	}
}

func BenchmarkPipelineQuery(b *testing.B) {
	d := core.MustNewDesign(core.DefaultConfig())
	dev := core.MustNewDevice(d, rng.New(31), 0)
	pl := core.MustNewPipeline(dev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Query(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmulatorRespond(b *testing.B) {
	d := core.MustNewDesign(core.DefaultConfig())
	dev := core.MustNewDevice(d, rng.New(32), 0)
	em := dev.Emulator()
	ch := d.ExpandChallenge(1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.Respond(ch)
	}
}

func BenchmarkMCUChecksum(b *testing.B) {
	dev := core.MustNewDevice(core.MustNewDesign(core.DefaultConfig()), rng.New(33), 0)
	port := mcu.MustNewDevicePort(dev)
	port.SetClock(500e6)
	p := swatt.Params{MemWords: 1024, Chunks: 2, BlocksPerChunk: 4, PRG: swatt.PRGMix32}
	im, err := swatt.BuildImage(p, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := im.Clone()
		run.Layout.SetNonce(run.Mem, uint32(i))
		cpu := mcu.New(run.Mem, 500e6, port)
		if err := cpu.Run(1 << 32); err != nil {
			b.Fatal(err)
		}
		port.DrainHelpers()
	}
}

func BenchmarkSyndromeGenerate(b *testing.B) {
	s := ecc.NewSketch(ecc.NewReedMuller15())
	resp := make([]uint8, 32)
	rng.New(34).Bits(resp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Generate(resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceHeaderEncode measures the frame codec with and without the
// v2 trace-header extension — the per-frame cost tracing adds to the
// attestation wire path (a 20-byte extension plus one extra CRC).
func BenchmarkTraceHeaderEncode(b *testing.B) {
	ch := attest.Challenge{Session: 1, Nonce: 0x1234, PUFSeed: 0x5678}
	tc := telemetry.TraceContext{Trace: 0x1111222233334444, Span: 0x5555666677778888}
	var buf bytes.Buffer
	b.Run("v1-untraced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := attest.WriteChallenge(&buf, ch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2-traced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := attest.WriteChallengeTraced(&buf, ch, tc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2-decode", func(b *testing.B) {
		buf.Reset()
		if err := attest.WriteChallengeTraced(&buf, ch, tc); err != nil {
			b.Fatal(err)
		}
		frame := buf.Bytes()
		rd := bytes.NewReader(frame)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rd.Reset(frame)
			if _, _, err := attest.ReadChallengeTraced(rd); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkJournalAppend measures the flight recorder's hot path: one
// structured event into the bounded ring. It must stay allocation-free so
// journaling never shows up in the session timing the protocol argues
// over.
func BenchmarkJournalAppend(b *testing.B) {
	j := telemetry.NewJournal(1024)
	ev := telemetry.Event{
		Trace:   0x1111222233334444,
		Session: 7,
		Device:  "node-3",
		Kind:    telemetry.EventChallengeSent,
		Detail:  "bench",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Append(ev)
	}
}

// BenchmarkHistoryCollect measures one full time-series collection pass —
// every counter, gauge, and histogram in a session-shaped registry into
// its windowed ring. The collector runs on a timer next to live
// attestation traffic, so after the first pass warms the ring cache it
// must stay allocation-free.
func BenchmarkHistoryCollect(b *testing.B) {
	reg := telemetry.NewRegistry()
	rtt := reg.Histogram("bench_rtt_seconds", "round-trip time", nil)
	sessions := reg.CounterVec("bench_sessions_total", "sessions by verdict", "verdict")
	rejects := reg.CounterVec("bench_rejections_total", "rejections by reason", "reason")
	firing := reg.Gauge("bench_alerts_firing", "alerts currently firing")
	for i := 0; i < 1024; i++ {
		rtt.ObserveExemplar(float64(i%16)*0.002, uint64(i+1))
		sessions.With("accepted").Inc()
		if i%9 == 0 {
			rejects.With("time_bound").Inc()
		}
	}
	firing.Set(1)
	ts := telemetry.NewTimeSeries(reg, 720, 5*time.Second)
	ts.Collect() // warm the per-series ring cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Collect()
	}
}

// BenchmarkExemplarObserve compares the RTT histogram's plain observation
// against the exemplar-carrying variant on the protocol hot path: the
// exemplar is one extra atomic store, so both must be allocation-free and
// within noise of each other.
func BenchmarkExemplarObserve(b *testing.B) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("bench_exemplar_seconds", "exemplar hot path", nil)
	b.Run("observe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(0.0123)
		}
	})
	b.Run("observe-exemplar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ObserveExemplar(0.0123, uint64(i+1))
		}
	})
}

// benchStorePool installs a synthetic enrollment (reference rows drawn
// once, shared) so the store benchmarks measure persistence machinery, not
// device simulation.
func benchStorePool(b *testing.B, n int) *crpstore.Store {
	b.Helper()
	const bits = 32
	row := make([]uint8, bits)
	rng.New(37).Bits(row)
	seeds := make([]uint64, n)
	refs := make([][]uint8, n*obfuscate.ResponsesPerOutput)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	for k := range refs {
		refs[k] = row
	}
	st, err := crpstore.Create(b.TempDir(), 0, bits, seeds, refs, crpstore.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkCRPStoreClaim measures the durable claim path — one WAL append
// per claim (NoSync: ordering preserved, fsync elided) — recycling the
// seed pool off the clock whenever it drains.
func BenchmarkCRPStoreClaim(b *testing.B) {
	const pool = 4096
	st := benchStorePool(b, pool)
	defer func() { st.Close() }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.NextUnused(); err != nil {
			b.StopTimer()
			st.Close()
			st = benchStorePool(b, pool)
			b.StartTimer()
			if _, err := st.NextUnused(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCRPStoreOpen measures verifier restart cost: snapshot load
// (4096 seeds × 8 references) plus replay of a 512-record claim WAL.
func BenchmarkCRPStoreOpen(b *testing.B) {
	st := benchStorePool(b, 4096)
	for i := 0; i < 512; i++ {
		if _, err := st.NextUnused(); err != nil {
			b.Fatal(err)
		}
	}
	dir := st.Dir()
	st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := crpstore.Open(dir, crpstore.Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		re.Close()
	}
}

// BenchmarkCRPStoreCompact measures folding a full claim WAL into a fresh
// snapshot (write + atomic rename, fsync elided).
func BenchmarkCRPStoreCompact(b *testing.B) {
	st := benchStorePool(b, 4096)
	defer func() { st.Close() }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if st.Remaining() == 0 {
			st.Close()
			st = benchStorePool(b, 4096)
		}
		if _, err := st.NextUnused(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := st.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- PR 6: epoch lifecycle (device lifetime) ---

// benchEpochDevice is a small-width device for the re-enrollment benches:
// epoch cutover cost is dominated by protocol I/O and measurement fan-out,
// not simulator width.
func benchEpochDevice() *core.Device {
	cfg := core.DefaultConfig()
	cfg.Width = 16
	return core.MustNewDevice(core.MustNewDesign(cfg), rng.New(3), 5)
}

func benchEpochSeeds(epoch uint32, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(epoch)<<32 | uint64(i+1)
	}
	return out
}

// BenchmarkEpochReenrollThroughput measures one full rolling re-enrollment
// per iteration: reconfigure the device to the next epoch, measure 64
// seeds x 8 references on the parallel batch engine, stage the snapshot
// durably, and commit the cutover. The seeds/s metric is the enrollment
// pipeline's sustained throughput.
func BenchmarkEpochReenrollThroughput(b *testing.B) {
	const seedsPerEpoch = 64
	dev := benchEpochDevice()
	st, err := crpstore.Enroll(b.TempDir(), dev, benchEpochSeeds(0, seedsPerEpoch), 0,
		crpstore.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		epoch := uint32(i + 1)
		dev.SetEpoch(epoch)
		if err := st.Reenroll(dev, benchEpochSeeds(epoch, seedsPerEpoch), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(seedsPerEpoch)*float64(b.N)/b.Elapsed().Seconds(), "seeds/s")
}

// BenchmarkEpochCutoverLatency isolates StagedEpoch.Commit — the
// gate-exclusive window live attestation sessions wait on during a
// cutover: transition-record append, snapshot rename, WAL reset, and the
// in-memory swap. Staging (the expensive measurement) happens off-clock,
// exactly as it does under the Reenroller.
func BenchmarkEpochCutoverLatency(b *testing.B) {
	const seedsPerEpoch = 64
	dev := benchEpochDevice()
	st, err := crpstore.Enroll(b.TempDir(), dev, benchEpochSeeds(0, seedsPerEpoch), 0,
		crpstore.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		epoch := uint32(i + 1)
		dev.SetEpoch(epoch)
		staged, err := st.StageEpoch(dev, benchEpochSeeds(epoch, seedsPerEpoch), 0)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := staged.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterLoadSLO drives the distributed verifier tier at
// increasing offered load and snapshots the SLO surface: session
// throughput, p99 latency (admission queueing included), and the
// reject_overload count. The 10k-prover level is the ISSUE's fleet-scale
// acceptance point; each level re-runs the merged claim-log audit and
// fails if it is not clean. Run with -benchtime 1x: one RunLoad per level
// is the measurement (the fleet build dominates re-runs and the SLO
// numbers come from the report, not ns/op).
func BenchmarkClusterLoadSLO(b *testing.B) {
	if os.Getenv("PUFATT_BENCH_CLUSTER") == "" {
		b.Skip("load levels run in make bench's dedicated single-shot pass; set PUFATT_BENCH_CLUSTER=1 to run directly")
	}
	levels := []struct {
		name             string
		provers, devices int
	}{
		{"provers=1000", 1000, 128},
		{"provers=5000", 5000, 256},
		{"provers=10000", 10000, 512},
	}
	for _, lv := range levels {
		b.Run(lv.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				report, err := cluster.RunLoad(cluster.LoadConfig{
					Provers: lv.provers,
					Devices: lv.devices,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !report.AuditClean {
					b.Fatalf("claim-log audit not clean at %d provers", lv.provers)
				}
				b.ReportMetric(float64(report.Provers), "provers")
				b.ReportMetric(report.P99Ms, "p99-ms")
				b.ReportMetric(float64(report.Overloaded), "reject-overload")
				b.ReportMetric(report.Throughput, "sessions/s")
			}
		})
	}
}
