#!/bin/sh
# verify.sh — the repository's verification gate.
#
# Runs the tier-1 commands (build + full test suite), static vetting, the
# race-detected attestation robustness tests (which exercise every
# injected fault class: drop, corrupt, truncate, delay, duplicate), the
# race-detected parallel batch-evaluation packages plus a targeted
# determinism smoke across the packages that fan work out to goroutines,
# the distributed verifier tier (failover, replication lag, admission),
# and the shutdown/leak regression suite.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/attest/... (fault-injection suite)"
go test -race ./internal/attest/...

echo "== go test -race ./internal/telemetry/... (tracer ring, journal, health registry)"
go test -race ./internal/telemetry/...

echo "== go test -race ./internal/crp/... (database + durable store claim paths)"
go test -race ./internal/crp/...

echo "== go test -race sim/core/experiments (parallel batch engine)"
go test -race ./internal/sim/... ./internal/core/... ./internal/experiments/...

echo "== go test -race -run TestParallelDeterminism (smoke across fan-out users)"
go test -race -run TestParallelDeterminism ./internal/core/... ./internal/experiments/... ./internal/attacks/...

echo "== go test -race bitsliced engine suite (cross-engine equivalence, lane kernels, linear fast model)"
go test -race -run 'Sliced|Bitslice|LinearModel|LinearEngine|EvalEngine' ./internal/sim ./internal/core

echo "== go test -race -run TestBitsliceDeterministicAcrossWorkers (bitslice worker-count determinism smoke)"
go test -race -run TestBitsliceDeterministicAcrossWorkers ./internal/core

echo "== go test -race epoch lifecycle suite (cutover kill-and-recover, concurrent re-enrollment vs live claims)"
go test -race -run 'Epoch|Reenroll|Exhaust|Kill|WALClaimsSplit' ./internal/crp/store ./internal/attest ./internal/core

echo "== go test -race observability v3 suite (history/alert/federation, admin under load, flight-dump uniqueness)"
go test -race -run 'TimeSeries|Alert|Federat|Observability|DebugVars|ConcurrentFlightDump|HealthSnapshotConsistency|AdminRoute' ./internal/telemetry ./internal/attest ./cmd/pufatt-top

echo "== go test -race cluster suite (leader-kill failover, replication-lag fail-closed, admission backpressure, load smoke)"
go test -race -run 'Ring|Group|Promotion|AutoFailover|DeviceLog|Admission|Cluster|Attest|RunLoad|ReferenceResponse' ./internal/attest/cluster

echo "== go test -race shutdown/leak regression suite (guardConn lifecycle, drain deadline, accept-race, eviction hammer)"
go test -race -run 'GuardConn|ServerDrain|ServerClose|ServerSerialises|RegistryEviction' ./internal/attest ./internal/crp/store

echo "== go test -race observability v4 suite (profiler ring single-flight, runtime collector, cluster span stitching, canary prober, queue-wait alert chain)"
go test -race -run 'Profiler|SanitizeTrigger|RuntimeCollector|GCPauseRule|AlertTriggersProfileCapture|ClusterSpanStitching|ReplLagGauge|Prober|ProbeDead|QueueWaitAlert|ClusterAdminRoutes|RenderProbes|FetchSnapshotProbes' ./internal/telemetry ./internal/attest ./internal/attest/cluster ./cmd/pufatt-top

echo "verify: OK"
