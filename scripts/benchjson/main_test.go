package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeDoc(t *testing.T, name string, benches map[string]float64) string {
	t.Helper()
	doc := Doc{Goos: "linux", Goarch: "amd64", Pkg: "pufatt"}
	for bname, ns := range benches {
		doc.Benchmarks = append(doc.Benchmarks, Result{
			Name: bname, Procs: 8, Iterations: 100,
			Metrics: map[string]float64{"ns/op": ns},
		})
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestComparePassesOnCleanSnapshots(t *testing.T) {
	old := writeDoc(t, "old.json", map[string]float64{"BenchmarkFigure3": 100, "BenchmarkOther": 50})
	new_ := writeDoc(t, "new.json", map[string]float64{"BenchmarkFigure3": 95, "BenchmarkOther": 500})
	// The non-critical 10x regression must not gate.
	if code := compareMain([]string{"-strict", "-critical", "Figure3", old, new_}); code != 0 {
		t.Fatalf("clean compare exited %d", code)
	}
}

func TestCompareFailsOnCriticalRegression(t *testing.T) {
	old := writeDoc(t, "old.json", map[string]float64{"BenchmarkFigure3": 100})
	new_ := writeDoc(t, "new.json", map[string]float64{"BenchmarkFigure3": 150})
	if code := compareMain([]string{"-strict", "-critical", "Figure3", old, new_}); code != 1 {
		t.Fatalf("50%% critical regression exited %d, want 1", code)
	}
	// Without -strict the same regression reports but does not gate.
	if code := compareMain([]string{"-critical", "Figure3", old, new_}); code != 0 {
		t.Fatalf("non-strict compare exited %d", code)
	}
}

// A 0 ns/op sample would make the delta NaN/Inf, which compares false
// against every threshold — the gate must fail by name instead of
// silently passing.
func TestCompareZeroSampleIsNamedFailure(t *testing.T) {
	old := writeDoc(t, "old.json", map[string]float64{"BenchmarkFigure3": 0})
	new_ := writeDoc(t, "new.json", map[string]float64{"BenchmarkFigure3": 100})
	if code := compareMain([]string{"-strict", "-critical", "Figure3", old, new_}); code != 1 {
		t.Fatalf("zero-baseline critical bench exited %d, want 1", code)
	}
	// Zero on the new side is just as ungateable.
	old2 := writeDoc(t, "old2.json", map[string]float64{"BenchmarkFigure3": 100})
	new2 := writeDoc(t, "new2.json", map[string]float64{"BenchmarkFigure3": 0})
	if code := compareMain([]string{"-strict", "-critical", "Figure3", old2, new2}); code != 1 {
		t.Fatalf("zero-new critical bench exited %d, want 1", code)
	}
	// A zero sample on a non-critical benchmark reports but does not gate.
	old3 := writeDoc(t, "old3.json", map[string]float64{"BenchmarkOther": 0, "BenchmarkFigure3": 10})
	new3 := writeDoc(t, "new3.json", map[string]float64{"BenchmarkOther": 5, "BenchmarkFigure3": 10})
	if code := compareMain([]string{"-strict", "-critical", "Figure3", old3, new3}); code != 0 {
		t.Fatalf("non-critical zero sample exited %d, want 0", code)
	}
}

// A critical benchmark missing from the new snapshot (renamed or removed)
// is invisible to the ratio gate — it must fail by name, not pass by
// silence.
func TestCompareMissingCriticalIsNamedFailure(t *testing.T) {
	old := writeDoc(t, "old.json", map[string]float64{"BenchmarkFigure3": 100, "BenchmarkOther": 50})
	new_ := writeDoc(t, "new.json", map[string]float64{"BenchmarkOther": 50})
	if code := compareMain([]string{"-strict", "-critical", "Figure3", old, new_}); code != 1 {
		t.Fatalf("missing critical bench exited %d, want 1", code)
	}
	// A missing non-critical benchmark is informational only.
	old2 := writeDoc(t, "old2.json", map[string]float64{"BenchmarkFigure3": 100, "BenchmarkOther": 50})
	new2 := writeDoc(t, "new2.json", map[string]float64{"BenchmarkFigure3": 100})
	if code := compareMain([]string{"-strict", "-critical", "Figure3", old2, new2}); code != 0 {
		t.Fatalf("missing non-critical bench exited %d, want 0", code)
	}
}

func TestCompareMinSpeedupRequiresMatch(t *testing.T) {
	old := writeDoc(t, "old.json", map[string]float64{"BenchmarkBatch": 1000})
	new_ := writeDoc(t, "new.json", map[string]float64{"BenchmarkBatch": 100})
	if code := compareMain([]string{"-strict", "-critical", "Batch", "-minspeedup", "5", old, new_}); code != 0 {
		t.Fatalf("10x speedup failed a 5x gate: exit %d", code)
	}
	if code := compareMain([]string{"-strict", "-critical", "Batch", "-minspeedup", "20", old, new_}); code != 1 {
		t.Fatalf("10x speedup passed a 20x gate: exit %d", code)
	}
	// -minspeedup with no matching benchmark is a misconfigured gate.
	if code := compareMain([]string{"-strict", "-critical", "Nomatch", "-minspeedup", "5", old, new_}); code != 1 {
		t.Fatalf("unmatched -minspeedup gate exited %d, want 1", code)
	}
}
