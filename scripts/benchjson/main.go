// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, one record per benchmark with ns/op, any custom
// ReportMetric units, and the run's GOMAXPROCS suffix. It exists so `make
// bench` can snapshot performance per PR (BENCH_PR<N>.json) in a form that
// diffing tools and dashboards can consume without re-parsing Go's text
// format.
//
// The compare subcommand diffs two snapshots and flags ns/op regressions:
//
//	benchjson compare BENCH_PR2.json BENCH_PR3.json
//	benchjson compare -threshold 0.10 -critical 'Figure3|Figure4' -strict old.json new.json
//
// A benchmark regresses when its ns/op grows by more than the threshold
// fraction. With -strict, regressions on benchmarks matching the critical
// regexp exit non-zero, so CI can gate on the Figure 3/4 hot paths.
//
// With -minspeedup S (S > 1), compare additionally asserts an improvement:
// every critical benchmark must run at least S times faster in the new
// snapshot (old ns/op ÷ new ns/op ≥ S), for gating deliberate optimisation
// work rather than just catching regressions:
//
//	benchjson compare -minspeedup 5 -critical 'BatchEval' -strict old.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is one snapshot file.
type Doc struct {
	Goos       string   `json:"goos"`
	Goarch     string   `json:"goarch"`
	Pkg        string   `json:"pkg"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(compareMain(os.Args[2:]))
	}
	convertMain()
}

func convertMain() {
	var doc Doc
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// compareMain diffs old vs new ns/op and reports regressions. Returns the
// process exit code.
func compareMain(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.10, "regression threshold as a fraction of old ns/op")
	critical := fs.String("critical", "Figure3|Figure4", "regexp of benchmarks whose regressions are fatal with -strict")
	strict := fs.Bool("strict", false, "exit non-zero on critical regressions")
	minSpeedup := fs.Float64("minspeedup", 0, "require critical benchmarks to be at least this many times faster (old/new ns/op); 0 disables")
	fs.Parse(args) //nolint:errcheck
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson compare [-threshold f] [-critical re] [-minspeedup s] [-strict] old.json new.json")
		return 2
	}
	crit, err := regexp.Compile(*critical)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: bad -critical regexp:", err)
		return 2
	}
	oldDoc, err := loadDoc(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newDoc, err := loadDoc(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	oldNs := nsByName(oldDoc)
	newNs := nsByName(newDoc)
	names := make([]string, 0, len(oldNs))
	for name := range oldNs {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-50s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	criticalRegressions := 0
	missedSpeedups := 0
	criticalMatched := 0
	criticalGone := 0
	criticalBroken := 0
	for _, name := range names {
		o := oldNs[name]
		n, ok := newNs[name]
		if !ok {
			// A benchmark present in the baseline but absent from the new
			// snapshot is invisible to the ratio gates below. For a critical
			// benchmark that silence would pass the gate exactly when it
			// must not (a rename or deletion of the hot path under test), so
			// it is a named failure rather than an informational row.
			mark := "gone"
			if crit.MatchString(name) {
				mark = "GONE (critical: renamed or removed?)"
				criticalGone++
			}
			fmt.Printf("%-50s %14.1f %14s %8s\n", name, o, "-", mark)
			continue
		}
		// A zero ns/op sample on either side would turn the delta or the
		// speedup ratio into NaN/Inf — which compares false against every
		// threshold and silently passes the gate. Diagnose it by name.
		if o <= 0 || n <= 0 {
			fmt.Printf("%-50s %14.1f %14.1f %8s\n", name, o, n, "UNGATEABLE (zero ns/op sample)")
			if crit.MatchString(name) {
				criticalBroken++
			}
			continue
		}
		delta := (n - o) / o
		mark := ""
		if delta > *threshold {
			mark = "REGRESSION"
			if crit.MatchString(name) {
				mark = "REGRESSION (critical)"
				criticalRegressions++
			}
		}
		if *minSpeedup > 0 && crit.MatchString(name) {
			criticalMatched++
			speedup := o / n
			if speedup < *minSpeedup {
				mark = fmt.Sprintf("SPEEDUP %.2fx < required %.2fx", speedup, *minSpeedup)
				missedSpeedups++
			} else if mark == "" {
				mark = fmt.Sprintf("speedup %.2fx", speedup)
			}
		}
		fmt.Printf("%-50s %14.1f %14.1f %+7.1f%% %s\n", name, o, n, 100*delta, mark)
	}
	for _, name := range sortedKeys(newNs) {
		if _, ok := oldNs[name]; !ok {
			fmt.Printf("%-50s %14s %14.1f %8s\n", name, "-", newNs[name], "new")
		}
	}
	fail := false
	if criticalRegressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d critical benchmark(s) regressed by more than %.0f%%\n",
			criticalRegressions, 100**threshold)
		fail = true
	}
	if criticalGone > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d critical benchmark(s) missing from the new snapshot (renamed or removed?) — the gate cannot evaluate them\n",
			criticalGone)
		fail = true
	}
	if criticalBroken > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d critical benchmark(s) with a zero ns/op sample — the gate cannot form a ratio\n",
			criticalBroken)
		fail = true
	}
	if *minSpeedup > 0 {
		if criticalMatched == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: -minspeedup given but no benchmark in both snapshots matches -critical %q\n", *critical)
			fail = true
		} else if missedSpeedups > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d critical benchmark(s) below the required %.2fx speedup\n",
				missedSpeedups, *minSpeedup)
			fail = true
		}
	}
	if fail && *strict {
		return 1
	}
	return 0
}

func loadDoc(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// nsByName collapses a snapshot to one ns/op per benchmark. Repeated names
// (a `go test -count N` run records every sample) keep the fastest sample:
// min-of-N is the noise floor of the machine, which is what a regression
// gate should compare — a slow outlier is scheduler jitter, not the code.
func nsByName(doc *Doc) map[string]float64 {
	m := make(map[string]float64, len(doc.Benchmarks))
	for _, r := range doc.Benchmarks {
		if ns, ok := r.Metrics["ns/op"]; ok {
			if prev, seen := m[r.Name]; !seen || ns < prev {
				m[r.Name] = ns
			}
		}
	}
	return m
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8  123  456.7 ns/op  1.2 custom/unit  ...
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	name, procs := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
