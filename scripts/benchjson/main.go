// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, one record per benchmark with ns/op, any custom
// ReportMetric units, and the run's GOMAXPROCS suffix. It exists so `make
// bench` can snapshot performance per PR (BENCH_PR2.json) in a form that
// diffing tools and dashboards can consume without re-parsing Go's text
// format.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var results []Result
	goos, goarch, pkg := "", "", ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc := map[string]any{
		"goos":       goos,
		"goarch":     goarch,
		"pkg":        pkg,
		"benchmarks": results,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8  123  456.7 ns/op  1.2 custom/unit  ...
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	name, procs := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
