// Package pufatt is a from-scratch Go implementation of PUFatt (Kong,
// Koushanfar, Pendyala, Sadeghi, Wachsmann — DAC 2014): embedded platform
// attestation built on a processor-based physically unclonable function.
//
// The library spans the full system described in the paper:
//
//   - The ALU PUF: two redundant ripple-carry ALUs raced against each other
//     at gate level, under a 45 nm delay model with quad-tree process
//     variation (core, netlist, delay, variation, sim).
//   - The PUF() pipeline: syndrome-based helper data over the (32,6,16)
//     Reed–Muller code and the two-phase XOR obfuscation network
//     (ecc, bch, gf2, obfuscate).
//   - The prover platform: a cycle-accurate 32-bit MCU with the pstart/pend
//     ISA extension and an assembler (mcu), running a generated SWATT-style
//     attestation checksum entangled with the PUF (swatt).
//   - The remote attestation protocol with time-bound enforcement and both
//     verification back-ends: PUF emulation from the gate-delay model H and
//     single-use CRP databases (attest, crp).
//   - The paper's adversaries, runnable against the real stack: memory-copy
//     forgery, overclocking, PUF-oracle proxying, and machine-learning
//     modeling (attacks).
//   - The FPGA prototype artifacts: programmable delay lines, bias
//     calibration, Virtex-5 resource estimation, SIRC-style collection
//     (fpga).
//
// This root package re-exports the pieces a downstream user needs and
// bundles them into a ready-to-run System. The experiment reproductions
// (Figures 3–4, Table 1, the §4 analyses) live in bench_test.go and
// cmd/pufatt-eval.
package pufatt

import (
	"fmt"

	"pufatt/internal/attest"
	"pufatt/internal/core"
	"pufatt/internal/crp"
	"pufatt/internal/delay"
	"pufatt/internal/ecc"
	"pufatt/internal/fpga"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
)

// Core PUF types.
type (
	// Config parameterises an ALU PUF design (widths, noise, variation).
	Config = core.Config
	// Design is a microprocessor design embedding the two-ALU PUF.
	Design = core.Design
	// Device is one manufactured chip of a Design.
	Device = core.Device
	// Emulator is the verifier-side PUF.Emulate() over the model H.
	Emulator = core.Emulator
	// Model is the exported gate-delay model H of one device.
	Model = core.Model
	// Pipeline is the prover-side PUF(): raw PUF → helper data →
	// obfuscation.
	Pipeline = core.Pipeline
	// VerifierPipeline recomputes PUF() outputs from helper data.
	VerifierPipeline = core.VerifierPipeline
	// Conditions is an operating corner (supply voltage, temperature).
	Conditions = delay.Conditions
)

// Protocol types.
type (
	// Challenge is the verifier's attestation challenge (r0, x0).
	Challenge = attest.Challenge
	// Response is the prover's attestation response with helper data.
	Response = attest.Response
	// Result is an attestation decision.
	Result = attest.Result
	// Link models the prover's constrained communication interface.
	Link = attest.Link
	// Prover is the honest embedded device agent.
	Prover = attest.Prover
	// Verifier enforces the time bound and recomputes the response.
	Verifier = attest.Verifier
	// AttestParams configures the SWATT-style checksum.
	AttestParams = swatt.Params
	// Image is an assembled prover memory image.
	Image = swatt.Image
	// CRPDatabase is the pre-recorded challenge/response verification
	// back-end with single-use replay protection.
	CRPDatabase = crp.Database
	// FPGABoard is one modelled Virtex-5 board with PDL calibration.
	FPGABoard = fpga.Board
)

// DefaultConfig returns the calibrated 32-bit ALU PUF configuration used by
// the paper-reproduction experiments.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultAttestParams returns the attestation checksum configuration used
// by the examples (4096 attested words, 64 PUF-entangled chunks).
func DefaultAttestParams() AttestParams { return swatt.DefaultParams() }

// NewDesign creates an ALU PUF design.
func NewDesign(cfg Config) (*Design, error) { return core.NewDesign(cfg) }

// NewDevice manufactures chip chipID of a design; the same (seed, chipID)
// pair always yields the same physical chip.
func NewDevice(d *Design, seed uint64, chipID int) (*Device, error) {
	return core.NewDevice(d, rng.New(seed), chipID)
}

// NewPipeline composes the full prover-side PUF() over a device.
func NewPipeline(dev *Device) (*Pipeline, error) { return core.NewPipeline(dev) }

// NewVerifierPipeline composes the verifier-side PUF() recovery over an
// emulator (or any reference source such as a CRP database).
func NewVerifierPipeline(src core.ReferenceSource) (*VerifierPipeline, error) {
	return core.NewVerifierPipelineFrom(src)
}

// EnrollCRPs records a single-use CRP database for a device.
func EnrollCRPs(dev *Device, seeds []uint64) (*CRPDatabase, error) {
	return crp.Enroll(dev, seeds)
}

// Nominal returns the nominal operating corner.
func Nominal() Conditions { return delay.Nominal() }

// DefaultLink returns the sensor-node-class link model (2 ms, 250 kbit/s).
func DefaultLink() Link { return attest.DefaultLink() }

// RunSession executes one attestation round trip on the simulated clock.
func RunSession(v *Verifier, agent attest.ProverAgent, link Link) (Result, error) {
	return attest.RunSession(v, agent, link)
}

// Options configures a complete demonstration System.
type Options struct {
	// PUF is the ALU PUF design configuration; zero value → DefaultConfig.
	PUF Config
	// Attest is the checksum configuration; zero value →
	// DefaultAttestParams.
	Attest AttestParams
	// Payload is the software state S to attest (placed after the
	// generated program in the attested region).
	Payload []uint32
	// Seed determinises manufacturing and noise; ChipID selects the die.
	Seed   uint64
	ChipID int
	// ClockMargin sets the CPU frequency to this fraction of the PUF
	// datapath's reliability limit (default 0.98, per Section 4.2).
	ClockMargin float64
	// UseCRPDatabase switches the verifier from emulation to a
	// pre-enrolled CRP database with the given capacity.
	UseCRPDatabase int
}

// System is a fully wired prover/verifier pair over one device: the
// quickest way to run PUFatt end to end.
type System struct {
	Design   *Design
	Device   *Device
	Port     *mcu.DevicePort
	Image    *Image
	Prover   *Prover
	Verifier *Verifier
	// DB is non-nil when the system verifies against a CRP database.
	DB *CRPDatabase
}

// NewSystem builds a complete attestation stack.
func NewSystem(opt Options) (*System, error) {
	if opt.PUF == (Config{}) {
		opt.PUF = DefaultConfig()
	}
	if opt.Attest == (AttestParams{}) {
		opt.Attest = DefaultAttestParams()
	}
	if opt.ClockMargin == 0 {
		opt.ClockMargin = 0.98
	}
	design, err := core.NewDesign(opt.PUF)
	if err != nil {
		return nil, err
	}
	dev, err := core.NewDevice(design, rng.New(opt.Seed), opt.ChipID)
	if err != nil {
		return nil, err
	}
	port, err := mcu.NewDevicePort(dev)
	if err != nil {
		return nil, err
	}
	image, err := swatt.BuildImage(opt.Attest, opt.Payload)
	if err != nil {
		return nil, err
	}
	prover := attest.NewProver(image.Clone(), port, 1)
	prover.TuneClock(opt.ClockMargin)
	var src core.ReferenceSource
	var db *crp.Database
	if opt.UseCRPDatabase > 0 {
		seeds := make([]uint64, opt.UseCRPDatabase)
		seedSrc := rng.New(opt.Seed).Sub("crp-enrollment")
		for i := range seeds {
			seeds[i] = seedSrc.Uint64()
		}
		db, err = crp.Enroll(dev, seeds)
		if err != nil {
			return nil, err
		}
		src = db
	} else {
		src = dev.Emulator()
	}
	verifier, err := attest.NewVerifier(image, src, prover.FreqHz, port.Votes)
	if err != nil {
		return nil, err
	}
	return &System{
		Design:   design,
		Device:   dev,
		Port:     port,
		Image:    image,
		Prover:   prover,
		Verifier: verifier,
		DB:       db,
	}, nil
}

// Attest runs one attestation session over the given link (zero value →
// DefaultLink).
func (s *System) Attest(link Link) (Result, error) {
	if link == (Link{}) {
		link = DefaultLink()
	}
	s.Verifier.AllowNetwork(link)
	if s.DB != nil {
		// CRP-database verification consumes one enrolled seed per run.
		seed, err := s.DB.NextUnused()
		if err != nil {
			return Result{}, fmt.Errorf("pufatt: %w", err)
		}
		_ = seed // the checksum draws its own PUF seeds; the claim models
		// the database's authentication budget.
	}
	return attest.RunSession(s.Verifier, s.Prover, link)
}

// QueryPUF runs one standalone PUF() invocation on the system's device and
// verifies it through the configured reference source, returning the
// obfuscated output and whether verification succeeded.
func (s *System) QueryPUF(seed uint64) (z []uint8, verified bool, err error) {
	pl, err := core.NewPipeline(s.Device)
	if err != nil {
		return nil, false, err
	}
	out, err := pl.Query(seed)
	if err != nil {
		return nil, false, err
	}
	vp, err := core.NewVerifierPipelineFrom(s.Device.Emulator())
	if err != nil {
		return nil, false, err
	}
	rec, err := vp.Recover(seed, out.Helpers)
	if err != nil {
		return out.Z, false, nil
	}
	match := true
	for i := range rec {
		if rec[i] != out.Z[i] {
			match = false
			break
		}
	}
	return out.Z, match, nil
}

// Mix32 is the public challenge-expansion finaliser shared by software and
// hardware (exported for interoperating implementations).
func Mix32(x uint32) uint32 { return core.Mix32(x) }

// ZWord packs an obfuscated output's bits into a word.
func ZWord(z []uint8) uint64 { return ecc.BitsToWord(z) }
