package pufatt

import (
	"testing"
)

func smallOptions() Options {
	cfg := DefaultConfig()
	cfg.Width = 32
	return Options{
		PUF:     cfg,
		Attest:  AttestParams{MemWords: 1024, Chunks: 4, BlocksPerChunk: 2},
		Payload: []uint32{0xC0FFEE, 0xF00D, 0xBEEF},
		Seed:    1,
	}
}

func TestNewSystemAndAttest(t *testing.T) {
	s, err := NewSystem(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := s.Attest(Link{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("attestation %d rejected: %s", i, res.Reason)
		}
	}
}

func TestSystemWithCRPDatabase(t *testing.T) {
	opt := smallOptions()
	opt.UseCRPDatabase = 3
	s, err := NewSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	if s.DB == nil || s.DB.Len() != 3 {
		t.Fatal("database not enrolled")
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Attest(Link{}); err != nil {
			t.Fatal(err)
		}
	}
	// Budget exhausted: the fourth authentication must fail.
	if _, err := s.Attest(Link{}); err == nil {
		t.Error("exhausted CRP database still authenticated")
	}
}

func TestSystemQueryPUF(t *testing.T) {
	s, err := NewSystem(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	z, verified, err := s.QueryPUF(12345)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) != 32 {
		t.Fatalf("z has %d bits", len(z))
	}
	if !verified {
		t.Error("standalone PUF query failed verification")
	}
}

func TestSystemDefaultsApplied(t *testing.T) {
	// Zero options must resolve to the calibrated defaults. The default
	// attestation image is larger, so just construct it.
	s, err := NewSystem(Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Design.Config().Width != 32 {
		t.Errorf("default width %d", s.Design.Config().Width)
	}
	if s.Image.Layout.Params.MemWords != DefaultAttestParams().MemWords {
		t.Error("default attestation params not applied")
	}
	if s.Prover.FreqHz <= 0 {
		t.Error("prover clock not tuned")
	}
}

func TestNewDeviceDeterministic(t *testing.T) {
	d, err := NewDesign(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewDevice(d, 7, 0)
	b, _ := NewDevice(d, 7, 0)
	ch := d.ExpandChallenge(1, 0)
	ra := a.NoiselessResponse(ch)
	rb := b.NoiselessResponse(ch)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("same seed/chip produced different devices")
		}
	}
}

func TestMix32Exported(t *testing.T) {
	if Mix32(0) == 0 && Mix32(1) == 1 {
		t.Error("Mix32 looks like identity")
	}
}

func TestZWord(t *testing.T) {
	if ZWord([]uint8{1, 1, 0, 1}) != 0b1011 {
		t.Errorf("ZWord = %#b", ZWord([]uint8{1, 1, 0, 1}))
	}
}

func TestPipelineRoundTripThroughFacade(t *testing.T) {
	d, _ := NewDesign(DefaultConfig())
	dev, _ := NewDevice(d, 9, 0)
	pl, err := NewPipeline(dev)
	if err != nil {
		t.Fatal(err)
	}
	out, err := pl.Query(42)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := NewVerifierPipeline(dev.Emulator())
	if err != nil {
		t.Fatal(err)
	}
	z, err := vp.Recover(42, out.Helpers)
	if err != nil {
		t.Fatal(err)
	}
	if ZWord(z) != ZWord(out.Z) {
		t.Error("facade round trip mismatch")
	}
}

func TestEnrollCRPsFacade(t *testing.T) {
	d, _ := NewDesign(DefaultConfig())
	dev, _ := NewDevice(d, 11, 0)
	db, err := EnrollCRPs(dev, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if db.Remaining() != 3 {
		t.Errorf("Remaining = %d", db.Remaining())
	}
}
