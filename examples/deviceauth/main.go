// Lightweight device authentication with the Slender PUF protocol (the
// paper's reference [22]) — the ALU PUF without attestation, error
// correction, or obfuscation: the prover reveals a secret-offset circular
// substring of its response stream and the verifier matches it against the
// emulated stream. Contrast with examples/remoteattest, which additionally
// proves memory integrity.
package main

import (
	"fmt"
	"log"

	"pufatt"
)

func main() {
	design, err := pufatt.NewDesign(pufatt.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	genuine, err := pufatt.NewDevice(design, 99, 0)
	if err != nil {
		log.Fatal(err)
	}
	impostor, err := pufatt.NewDevice(design, 99, 1)
	if err != nil {
		log.Fatal(err)
	}

	params := pufatt.DefaultSlenderParams()
	fmt.Printf("Slender PUF: %d-bit stream, %d-bit substring, threshold %.0f%%\n\n",
		params.StreamBits, params.SubstringBits, 100*params.Threshold)

	verifier, err := pufatt.NewSlenderVerifier(genuine.Emulator(), params)
	if err != nil {
		log.Fatal(err)
	}
	src := pufatt.NewRand(7)

	run := func(label string, dev *pufatt.Device, rounds int) {
		pr, err := pufatt.NewSlenderProver(dev, params)
		if err != nil {
			log.Fatal(err)
		}
		accepted := 0
		var worst, best float64 = 1, 0
		for i := 0; i < rounds; i++ {
			out, err := pufatt.SlenderAuthenticate(pr, verifier, src)
			if err != nil {
				log.Fatal(err)
			}
			if out.Accepted {
				accepted++
			}
			if out.BestFrac < worst {
				worst = out.BestFrac
			}
			if out.BestFrac > best {
				best = out.BestFrac
			}
		}
		fmt.Printf("%-9s %d/%d rounds accepted (match fractions %.2f..%.2f)\n",
			label, accepted, rounds, worst, best)
	}

	run("genuine:", genuine, 10)
	run("impostor:", impostor, 10)

	fmt.Println("\nno helper data, no obfuscation network: noise is absorbed by the")
	fmt.Println("matching threshold and the secret substring offset hides the CRPs")
	fmt.Println("an attacker would need for model building.")
}
