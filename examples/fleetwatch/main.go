// Fleet monitoring: the observability side of PUFatt attestation. A base
// station sweeps an enrolled fleet while the telemetry admin endpoint
// serves live per-device health. Two nodes misbehave in ways a verdict
// alone cannot separate from luck:
//
//   - node 2 answers through a proxy that adds latency — every session is
//     still ACCEPTED (the delay stays inside δ), but its p95 round-trip
//     breaks the timing SLO and the health registry turns it SUSPECT. In
//     the paper's threat model that timing inflation is exactly what an
//     overclocked or relayed prover looks like.
//   - node 5's radio drops most frames — transport failures and retries
//     push it DEGRADED (an availability problem, not a security one).
//
// Every failing session also leaves a flight-recorder dump: a JSON-lines
// snapshot of the protocol-event journal tagged with the session's trace
// ID, so the dump can be lined up against the span tree at /debug/traces.
//
// Run it, then (while it sleeps at the end) explore:
//
//	curl http://localhost:7790/devices       # per-device SLO judgement
//	curl http://localhost:7790/healthz       # fleet summary; 503 = suspect
//	curl http://localhost:7790/debug/traces  # stitched session span trees
//	curl http://localhost:7790/debug/journal # recent protocol events
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"pufatt"
)

const fleetSize = 6

// proxiedAgent relays a prover and adds fixed latency to every answer —
// the response itself is perfectly genuine, only late.
type proxiedAgent struct {
	inner pufatt.ProverAgent
	extra float64 // seconds added per response
}

func (a *proxiedAgent) Respond(ch pufatt.Challenge) (pufatt.Response, float64, error) {
	resp, compute, err := a.inner.Respond(ch)
	return resp, compute + a.extra, err
}

func main() {
	params := pufatt.AttestParams{MemWords: 1024, Chunks: 8, BlocksPerChunk: 8}
	firmware := make([]uint32, 400)
	for i := range firmware {
		firmware[i] = pufatt.Mix32(uint32(i) ^ 0xf1ee7)
	}
	image, err := pufatt.BuildAttestationImage(params, firmware)
	if err != nil {
		log.Fatal(err)
	}
	design, err := pufatt.NewDesign(pufatt.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The flight recorder dumps the protocol journal here whenever a
	// session fails; the SLO gets a deployment-specific timing bound after
	// the first sweep calibrates the honest round-trip.
	flightDir := filepath.Join(os.TempDir(), "pufatt-fleetwatch")
	tel := pufatt.AttestMetrics()
	tel.SetFlightDir(flightDir)

	fleet := pufatt.NewFleet()
	link := pufatt.DefaultLink()
	var verifiers []*pufatt.Verifier
	for id := 0; id < fleetSize; id++ {
		dev, err := pufatt.NewDevice(design, 2000, id)
		if err != nil {
			log.Fatal(err)
		}
		port, err := pufatt.NewDevicePort(dev)
		if err != nil {
			log.Fatal(err)
		}
		prover := pufatt.NewProver(image.Clone(), port, 1)
		prover.TuneClock(0.98)
		verifier, err := pufatt.NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
		if err != nil {
			log.Fatal(err)
		}

		var agent pufatt.ProverAgent = prover
		switch id {
		case 2: // answers through a latency-adding proxy, stays inside δ
			agent = &proxiedAgent{inner: prover, extra: 0.030}
		case 5: // flaky radio: most frames dropped, transiently
			agent = pufatt.NewFaultyLink(prover, pufatt.FaultPlan{Drop: 0.7}, 99)
		}
		if err := fleet.Enroll(id, verifier, agent); err != nil {
			log.Fatal(err)
		}
		verifiers = append(verifiers, verifier)
	}

	addr, stopAdmin, err := pufatt.StartAdmin("localhost:7790", nil)
	if err != nil {
		// Port taken (another fleetwatch?): fall back to an ephemeral one.
		addr, stopAdmin, err = pufatt.StartAdmin("localhost:0", nil)
		if err != nil {
			log.Fatal(err)
		}
	}
	defer stopAdmin()
	fmt.Printf("fleetwatch: admin surface at http://%s (devices, healthz, traces, journal)\n", addr)
	fmt.Printf("fleetwatch: flight dumps in %s\n\n", flightDir)

	// Sweep 1 calibrates: the slowest honest round-trip plus a 12 ms guard
	// band sets the timing SLO. Node 2's proxy adds 30 ms on top of an
	// honest answer, so it lands over the bound while every one of its
	// verdicts stays accepted — challenge-to-challenge compute variance
	// alone never crosses the guard band.
	opts := pufatt.DefaultSweepOptions()
	report := fleet.SweepWithOptions(context.Background(), link, opts)
	var calib float64
	for _, r := range report.Results {
		if r.NodeID != 2 && r.Err == nil && r.Result.Elapsed > calib {
			calib = r.Result.Elapsed
		}
	}
	slo := tel.Health.SLO()
	slo.MaxRTTP95 = calib + 0.012
	slo.MaxTransportRate = 0.3 // a radio losing >30% of its sessions is degraded
	slo.MinSessions = 4
	tel.Health.SetSLO(slo)
	fmt.Printf("sweep 1 (calibration): %s\n", report.String())
	fmt.Printf("timing SLO: p95 RTT ≤ %.4fs (slowest honest RTT %.4fs + 12ms)\n\n", slo.MaxRTTP95, calib)

	for i := 2; i <= 6; i++ {
		report = fleet.SweepWithOptions(context.Background(), link, opts)
		fmt.Printf("sweep %d: %s\n", i, report.String())
	}

	// The health registry's judgement, as /devices serves it.
	fmt.Println("\nper-device health:")
	for _, v := range verifiers {
		d, ok := tel.Health.Get(v.Device)
		if !ok {
			continue
		}
		fmt.Printf("  %-8s %-9s sessions=%d rejected=%d transport=%d reasons=%v\n",
			d.Device, d.Status, d.Sessions, d.Rejected, d.Transport, d.Reasons)
	}
	sum := tel.Health.Summary()
	fmt.Printf("fleet: %s (%d ok, %d degraded, %d suspect of %d)\n",
		sum.Status(), sum.OK, sum.Degraded, sum.Suspect, sum.Devices)

	dumps, _ := filepath.Glob(filepath.Join(flightDir, "flight-*.jsonl"))
	fmt.Printf("flight dumps written: %d (each header carries the failing session's trace ID)\n", len(dumps))

	fmt.Println("\nserving the admin endpoint for 30s — curl it now (ctrl-C to stop early)")
	time.Sleep(30 * time.Second)
}
