// Durable CRP enrollment, demonstrated through a crash: enroll a device
// fleet into the persistent store, consume part of each device's
// authentication budget, "crash" the verifier (drop every in-memory
// handle), recover from snapshot + WAL, and show that every pre-crash
// claim is still enforced — a replayed seed is rejected after the restart,
// which is exactly the property the in-memory database loses with the
// process. Finishes with a compaction and a full attestation session
// driven by the recovered budget.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"pufatt/internal/attest"
	"pufatt/internal/core"
	"pufatt/internal/crp"
	"pufatt/internal/crp/store"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
)

func main() {
	root, err := os.MkdirTemp("", "pufatt-enrollstore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// --- Enrollment: a three-device fleet, 64 seeds each, measured in
	// parallel and written as CRC-checked snapshots under one registry.
	cfg := core.DefaultConfig()
	design := core.MustNewDesign(cfg)
	master := rng.New(7)
	devices := make([]*core.Device, 3)
	opts := store.DefaultOptions()
	opts.NoSync = true // demo runs in a throwaway temp dir

	reg, err := store.OpenRegistry(root, opts)
	if err != nil {
		log.Fatal(err)
	}
	seeds := make([]uint64, 64)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	for id := range devices {
		devices[id] = core.MustNewDevice(design, master, id)
		if _, err := reg.Enroll(devices[id], seeds, 0); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("enrolled %d devices x %d seeds under %s\n", len(devices), len(seeds), root)

	// --- Spend part of device 1's budget.
	h, err := reg.Handle(1)
	if err != nil {
		log.Fatal(err)
	}
	var spent []uint64
	for i := 0; i < 5; i++ {
		seed, err := h.NextUnused()
		if err != nil {
			log.Fatal(err)
		}
		spent = append(spent, seed)
	}
	fmt.Printf("device 1: claimed seeds %v, %d remaining\n", spent, h.Remaining())

	// --- Crash. Close drops every in-memory handle; nothing survives but
	// the snapshot and the claim WAL on disk.
	if err := reg.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verifier crashed (all in-memory state dropped)")

	// --- Recover and verify the security property: every pre-crash claim
	// is still a replay.
	reg2, err := store.OpenRegistry(root, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer reg2.Close()
	h2, err := reg2.Handle(1)
	if err != nil {
		log.Fatal(err)
	}
	for _, seed := range spent {
		if err := h2.Claim(seed); !errors.Is(err, crp.ErrSeedUsed) {
			log.Fatalf("seed %d: expected replay rejection, got %v", seed, err)
		}
	}
	fmt.Printf("recovered: all %d pre-crash claims still rejected as replays, %d remaining\n",
		len(spent), h2.Remaining())

	// --- Compact: fold the recovered WAL into a fresh snapshot.
	if err := reg2.CompactAll(); err != nil {
		log.Fatal(err)
	}
	st, err := reg2.Device(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compacted: WAL now holds %d record(s)\n", st.WALRecords())

	// --- One full attestation session against the recovered budget.
	dev := devices[1]
	port, err := mcu.NewDevicePort(dev)
	if err != nil {
		log.Fatal(err)
	}
	params := swatt.Params{MemWords: 1024, Chunks: 4, BlocksPerChunk: 2, PRG: swatt.PRGMix32}
	payload := make([]uint32, 200)
	src := rng.New(11)
	for i := range payload {
		payload[i] = src.Uint32()
	}
	image, err := swatt.BuildImage(params, payload)
	if err != nil {
		log.Fatal(err)
	}
	prover := attest.NewProver(image.Clone(), port, 1)
	prover.TuneClock(0.98)
	v, err := attest.NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
	if err != nil {
		log.Fatal(err)
	}
	v.WithSeedBudget(h2)

	res, err := attest.RunSession(v, prover, attest.DefaultLink())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attestation with recovered budget: accepted=%v (%.4fs <= δ=%.4fs), %d seeds left\n",
		res.Accepted, res.Elapsed, res.Delta, h2.Remaining())
}
