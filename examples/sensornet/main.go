// Sensor-network fleet attestation: the motivating deployment of the
// paper's introduction. A base station (verifier) holds the emulation model
// of every enrolled node; it periodically sweeps the fleet, and a node whose
// firmware was modified in the field is pinpointed — without any per-node
// cryptographic keys or secure hardware.
package main

import (
	"fmt"
	"log"

	"pufatt"
)

const fleetSize = 6

type node struct {
	id     int
	prover *pufatt.Prover
	port   *pufatt.DevicePort
}

func main() {
	params := pufatt.AttestParams{MemWords: 1024, Chunks: 8, BlocksPerChunk: 8}
	firmware := make([]uint32, 400)
	for i := range firmware {
		firmware[i] = pufatt.Mix32(uint32(i) ^ 0x5e75ed)
	}
	image, err := pufatt.BuildAttestationImage(params, firmware)
	if err != nil {
		log.Fatal(err)
	}
	design, err := pufatt.NewDesign(pufatt.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Manufacture and enroll the fleet. Every node runs the SAME firmware
	// image; only the silicon differs — and that difference is the
	// authentication anchor.
	fleet := pufatt.NewFleet()
	var nodes []*node
	link := pufatt.DefaultLink()
	for id := 0; id < fleetSize; id++ {
		dev, err := pufatt.NewDevice(design, 1000, id)
		if err != nil {
			log.Fatal(err)
		}
		port, err := pufatt.NewDevicePort(dev)
		if err != nil {
			log.Fatal(err)
		}
		prover := pufatt.NewProver(image.Clone(), port, 1)
		prover.TuneClock(0.98)
		v, err := pufatt.NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
		if err != nil {
			log.Fatal(err)
		}
		v.AllowNetwork(link)
		if err := fleet.Enroll(id, v, prover); err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, &node{id: id, prover: prover, port: port})
	}
	fmt.Printf("enrolled %d nodes (emulation models extracted at manufacturing)\n\n", fleet.Size())

	sweep := func(tag string) {
		fmt.Printf("fleet sweep (%s):\n", tag)
		results := fleet.Sweep(link)
		for _, r := range results {
			status := "OK      "
			if !r.Healthy() {
				status = "COMPROMISED"
			}
			fmt.Printf("  node %d: %s (%.1f ms)\n", r.NodeID, status, r.Result.Elapsed*1e3)
		}
		if bad := pufatt.Compromised(results); bad != nil {
			fmt.Printf("  -> compromised nodes: %v\n", bad)
		}
		fmt.Println()
	}

	sweep("all nodes healthy")

	// Node 3 is compromised in the field: 48 firmware words patched.
	victim := nodes[3]
	for i := 0; i < 48; i++ {
		victim.prover.Image.Mem[image.Layout.PayloadAddr+40+i] ^= 0xA5A5
	}
	fmt.Println("node 3 firmware patched by an attacker...")
	sweep("after compromise")

	// The attacker 'cleans up' — restores the firmware. Attestation
	// recovers, showing the sweep is a live integrity check, not a fuse.
	for i := 0; i < 48; i++ {
		victim.prover.Image.Mem[image.Layout.PayloadAddr+40+i] ^= 0xA5A5
	}
	fmt.Println("node 3 firmware restored...")
	sweep("after restoration")
}
