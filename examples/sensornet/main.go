// Sensor-network fleet attestation: the motivating deployment of the
// paper's introduction. A base station (verifier) holds the emulation model
// of every enrolled node; it periodically sweeps the fleet over lossy
// radio links, and the degradation report keeps the two failure regimes
// apart: a node whose firmware was modified is COMPROMISED (the verifier
// completed a session and rejected it), while a node whose link is down is
// UNREACHABLE (no verdict — the sweep retried and gave up). Nodes that
// stay unreachable sweep after sweep are quarantined by a per-node circuit
// breaker so a dead region cannot consume the sweep's retry budget forever.
package main

import (
	"context"
	"fmt"
	"log"

	"pufatt"
)

const fleetSize = 8

type node struct {
	id     int
	prover *pufatt.Prover
	port   *pufatt.DevicePort
}

func main() {
	params := pufatt.AttestParams{MemWords: 1024, Chunks: 8, BlocksPerChunk: 8}
	firmware := make([]uint32, 400)
	for i := range firmware {
		firmware[i] = pufatt.Mix32(uint32(i) ^ 0x5e75ed)
	}
	image, err := pufatt.BuildAttestationImage(params, firmware)
	if err != nil {
		log.Fatal(err)
	}
	design, err := pufatt.NewDesign(pufatt.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Manufacture and enroll the fleet. Every node runs the SAME firmware
	// image; only the silicon differs — and that difference is the
	// authentication anchor. Node 5's radio link is flaky (drops ~half its
	// frames, transiently) and node 6's is dead: the fault-injection
	// harness models both deterministically.
	fleet := pufatt.NewFleet()
	var nodes []*node
	link := pufatt.DefaultLink()
	for id := 0; id < fleetSize; id++ {
		dev, err := pufatt.NewDevice(design, 1000, id)
		if err != nil {
			log.Fatal(err)
		}
		port, err := pufatt.NewDevicePort(dev)
		if err != nil {
			log.Fatal(err)
		}
		prover := pufatt.NewProver(image.Clone(), port, 1)
		prover.TuneClock(0.98)
		v, err := pufatt.NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
		if err != nil {
			log.Fatal(err)
		}
		v.AllowNetwork(link)
		var agent pufatt.ProverAgent = prover
		switch id {
		case 5: // flaky link: two dropped frames, then clean
			agent = pufatt.NewFaultyLink(prover, pufatt.FaultPlan{Drop: 1, MaxFaults: 2}, 42)
		case 6: // dead link: drops everything, forever
			agent = pufatt.NewFaultyLink(prover, pufatt.FaultPlan{Drop: 1}, 43)
		}
		if err := fleet.Enroll(id, v, agent); err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, &node{id: id, prover: prover, port: port})
	}
	fmt.Printf("enrolled %d nodes (emulation models extracted at manufacturing)\n", fleet.Size())
	fmt.Println("node 5: flaky radio (transient), node 6: dead radio (persistent)")
	fmt.Println()

	opts := pufatt.DefaultSweepOptions() // bounded concurrency, 3 attempts/node
	sweep := func(tag string) {
		fmt.Printf("fleet sweep (%s):\n", tag)
		report := fleet.SweepWithOptions(context.Background(), link, opts)
		for _, r := range report.Results {
			status := "OK         "
			switch {
			case r.Compromised():
				status = "COMPROMISED"
			case r.Attempts == 0:
				status = "QUARANTINED"
			case r.Unreachable():
				status = "UNREACHABLE"
			}
			fmt.Printf("  node %d: %s (%d attempt(s), %.1f ms)\n",
				r.NodeID, status, r.Attempts, r.Result.Elapsed*1e3)
		}
		if len(report.Compromised) > 0 {
			fmt.Printf("  -> compromised (verifier REJECTED — security event): %v\n", report.Compromised)
		}
		if len(report.Unreachable) > 0 {
			fmt.Printf("  -> unreachable (transport exhausted — no verdict):   %v\n", report.Unreachable)
		}
		if len(report.Quarantined) > 0 {
			fmt.Printf("  -> quarantined by circuit breaker: %v\n", report.Quarantined)
		}
		fmt.Println()
	}

	sweep("all firmware intact; node 5 recovers via retries")

	// Node 3 is compromised in the field: 48 firmware words patched.
	victim := nodes[3]
	for i := 0; i < 48; i++ {
		victim.prover.Image.Mem[image.Layout.PayloadAddr+40+i] ^= 0xA5A5
	}
	fmt.Println("node 3 firmware patched by an attacker...")
	sweep("after compromise — note node 3 ≠ node 6 in the report")

	// The attacker 'cleans up' — restores the firmware. Attestation
	// recovers, showing the sweep is a live integrity check, not a fuse.
	for i := 0; i < 48; i++ {
		victim.prover.Image.Mem[image.Layout.PayloadAddr+40+i] ^= 0xA5A5
	}
	fmt.Println("node 3 firmware restored...")
	sweep("after restoration")

	// Node 6 has now been unreachable for three sweeps: the circuit
	// breaker opens and later sweeps only probe it.
	sweep("node 6 quarantined")
}
