// Machine-learning modeling attack (Rührmair et al.) against the ALU PUF:
// train logistic-regression models on observed challenge/response pairs and
// measure how well the PUF can be predicted — first against the raw arbiter
// responses (near-total break, the reason Section 2 mandates obfuscation),
// then against the XOR-obfuscated interface (ineffective). Prints a
// learning curve over training-set size.
package main

import (
	"fmt"
	"log"

	"pufatt"
)

func main() {
	cfg := pufatt.DefaultConfig()
	cfg.Width = 16 // the FPGA-scale PUF; the mechanism is width-independent
	design, err := pufatt.NewDesign(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := pufatt.NewDevice(design, 77, 0)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := pufatt.NewObfuscatedOracle(dev)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("modeling attack on the raw ALU PUF (features: operand bits + carry generate/propagate):")
	fmt.Printf("%10s %12s\n", "train CRPs", "accuracy")
	for _, n := range []int{100, 300, 1000, 3000} {
		m := pufatt.TrainRawModel(dev, n, 25, 1)
		acc := pufatt.EvaluateRawModel(m, dev, 500, 2)
		fmt.Printf("%10d %11.1f%%\n", n, 100*acc)
	}

	fmt.Println("\nsame attack against the obfuscated interface (seed -> z):")
	fmt.Printf("%10s %12s %12s\n", "train CRPs", "per-bit", "full-z")
	for _, n := range []int{300, 1000, 3000} {
		m := pufatt.TrainObfuscatedModel(oracle, n, 25, 3)
		acc := pufatt.EvaluateObfuscatedModel(m, oracle, 300, 4)
		// Full-z prediction is what an attestation forger actually needs.
		full := 0
		for k := 0; k < 300; k++ {
			seed := pufatt.Mix32(uint32(k) + 0xF00)
			want := oracle.Z(seed)
			got := m.PredictZ(seed)
			ok := true
			for i := range want {
				if want[i] != got[i] {
					ok = false
					break
				}
			}
			if ok {
				full++
			}
		}
		fmt.Printf("%10d %11.1f%% %11.1f%%\n", n, 100*acc, 100*float64(full)/300)
	}
	fmt.Println("\nthe obfuscation network holds: per-bit prediction collapses toward the")
	fmt.Println("bias floor and full-word prediction — what checksum forgery needs — is negligible.")
}
