// Distributed verification: three shards, one leader killed, zero
// duplicate claims.
//
// A single verifier is a single point of failure and a single claim log.
// The cluster tier shards devices across verifiers with a consistent-hash
// ring, replicates each device's seed-claim log to its replica set before
// any seed is released (log-before-acknowledge), and fails over to a
// caught-up replica when a shard dies — refusing, typed ErrStaleReplica,
// to promote one whose log is behind.
//
// This demo builds a 3-shard cluster over 12 simulated PUF devices,
// sweeps the fleet once, kills the busiest shard, sweeps again (every
// route through the dead shard fails over automatically), and then runs
// the merged claim-log audit: replica logs must be prefixes of one
// history and no seed may ever be claimed twice. A synthetic canary
// prober then runs one end-to-end attestation session against every
// shard — on an isolated seed budget, so it can never burn production
// seeds — proving the live shards protocol-correct and flagging the dead
// one. It finishes by starting the admin surface and fetching /ring (the
// placement view) and /probes (the canary view) from it.
//
//	go run ./examples/clusterdemo
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"

	"pufatt/internal/attest"
	"pufatt/internal/attest/cluster"
	"pufatt/internal/core"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
)

const devices = 12

func main() {
	c, err := cluster.New(cluster.Config{
		Shards:       []string{"shard-0", "shard-1", "shard-2"},
		VNodes:       64,
		Replicas:     3,
		AutoFailover: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	design := core.MustNewDesign(core.DefaultConfig())
	params := swatt.Params{MemWords: 512, Chunks: 2, BlocksPerChunk: 2, PRG: swatt.PRGMix32}
	image, err := swatt.BuildImage(params, make([]uint32, 64))
	if err != nil {
		log.Fatal(err)
	}
	link := attest.DefaultLink()

	fmt.Printf("== enrolling %d devices across 3 shards\n", devices)
	for id := 0; id < devices; id++ {
		dev, err := core.NewDevice(design, rng.New(uint64(id)+1), id)
		if err != nil {
			log.Fatal(err)
		}
		seeds := make([]uint64, 16)
		for k := range seeds {
			seeds[k] = uint64(id)<<16 | uint64(k+1)
		}
		enr, err := cluster.NewEnrollment(dev, seeds)
		if err != nil {
			log.Fatal(err)
		}
		g, err := c.Enroll(enr)
		if err != nil {
			log.Fatal(err)
		}
		port, err := mcu.NewDevicePort(dev)
		if err != nil {
			log.Fatal(err)
		}
		prover := attest.NewProver(image.Clone(), port, 1)
		prover.TuneClock(0.98)
		// The emulator model answers the checksum's derived challenges; the
		// Group is the replicated budget every session's x0 claims through.
		v, err := attest.NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
		if err != nil {
			log.Fatal(err)
		}
		v.WithSeedBudget(g)
		v.PUFEpoch = enr.Epoch()
		v.Nonces = rng.New(uint64(id)*7 + 3).Uint32
		v.AllowNetwork(link)
		if err := c.Bind(id, v, prover, link); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   device %2d -> replicas %v\n", id, g.Replicas())
	}

	policy := attest.RetryPolicy{MaxAttempts: 3, JitterSeed: 42}
	sweep := func(label string) {
		outcomes := c.Sweep(context.Background(), policy, 4)
		accepted := 0
		for id, o := range outcomes {
			if o.Err != nil {
				fmt.Printf("   device %2d FAILED: %v\n", id, o.Err)
				continue
			}
			if o.Result.Accepted {
				accepted++
			}
		}
		fmt.Printf("== %s: %d/%d accepted\n", label, accepted, len(outcomes))
	}

	sweep("sweep 1 (all shards up)")

	// Kill the shard leading the most devices — the worst-case failover.
	lead := busiestLeader(c)
	fmt.Printf("== killing %s (leads the most devices)\n", lead)
	if err := c.Kill(lead); err != nil {
		log.Fatal(err)
	}

	sweep("sweep 2 (leader dead, auto-failover)")

	audit := c.AuditClaims()
	fmt.Printf("== claim-log audit: devices=%d frames=%d dead=%v clean=%v\n",
		audit.Devices, audit.Frames, audit.DeadShards, audit.Clean())
	if !audit.Clean() {
		for _, v := range audit.Violations {
			fmt.Println("   VIOLATION:", v)
		}
		log.Fatal("audit not clean")
	}

	// Synthetic canary probing: each shard gets its own canary device on a
	// private seed budget — isolated from every enrolled device — and runs
	// a real end-to-end attestation session through that shard's admission
	// gate. A shard with zero organic traffic still gets a verdict; the
	// dead shard's canary reports an error instead of silence.
	prober, err := cluster.NewProber(c, cluster.ProberConfig{})
	if err != nil {
		log.Fatal(err)
	}
	prober.ProbeAll(context.Background())
	fmt.Println("== canary probes (one synthetic session per shard)")
	for _, st := range prober.Status() {
		fmt.Printf("   %s alive=%-5v verdict=%-8s rtt=%.4fs seeds-left=%d %s\n",
			st.Shard, st.Alive, st.LastVerdict, st.LastRTTSeconds, st.SeedsRemaining, st.LastReason)
	}

	// The admin surface: /ring is the placement view, /cluster the
	// per-device replication state, /probes the canary statuses.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: cluster.AdminMux(c, nil)}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/ring")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("== GET /ring\n%s", body)
}

// busiestLeader finds the shard currently leading the most devices.
func busiestLeader(c *cluster.Cluster) string {
	counts := map[string]int{}
	for _, id := range c.Devices() {
		if lead, err := c.Group(id).Leader(); err == nil {
			counts[lead]++
		}
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if counts[names[i]] != counts[names[j]] {
			return counts[names[i]] > counts[names[j]]
		}
		return names[i] < names[j]
	})
	return names[0]
}
