// Rolling re-enrollment across a PUF reconfiguration epoch: the device
// lifetime answer to the CRP database's bounded budget. The demo enrolls a
// device, burns its seed budget down to the low-budget watermark with live
// attestation sessions, lets the Reenroller measure a fresh epoch in the
// background while sessions continue, and cuts over — store commit plus
// prover reconfiguration — behind the epoch gate. It then demonstrates the
// two isolation properties the epoch model guarantees:
//
//  1. no old-epoch seed is claimable after the cutover (the retired CRP
//     space is worthless, even to an attacker who modeled it), and
//  2. each epoch's delay instance is reproducible for audit — the same
//     (device seed, epoch) pair always yields the same references — while
//     distinct epochs disagree on a large fraction of response bits.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"pufatt/internal/attest"
	"pufatt/internal/core"
	"pufatt/internal/crp"
	"pufatt/internal/crp/store"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
)

func main() {
	root, err := os.MkdirTemp("", "pufatt-reenroll-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// --- The live device and its enrollment twin. The twin is the
	// facility-side instance of the same manufacturing seed: the Reenroller
	// reconfigures and measures it in the background while the live device
	// keeps answering attestation traffic on the old epoch.
	cfg := core.DefaultConfig()
	design := core.MustNewDesign(cfg)
	dev := core.MustNewDevice(design, rng.New(42), 0)
	twin := core.MustNewDevice(design, rng.New(42), 0)

	port, err := mcu.NewDevicePort(dev)
	if err != nil {
		log.Fatal(err)
	}
	params := swatt.Params{MemWords: 1024, Chunks: 4, BlocksPerChunk: 2, PRG: swatt.PRGMix32}
	payload := make([]uint32, 200)
	src := rng.New(11)
	for i := range payload {
		payload[i] = src.Uint32()
	}
	image, err := swatt.BuildImage(params, payload)
	if err != nil {
		log.Fatal(err)
	}
	prover := attest.NewProver(image.Clone(), port, 1)
	prover.TuneClock(0.98)
	verifier, err := attest.NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
	if err != nil {
		log.Fatal(err)
	}

	// --- Epoch-0 enrollment: 10 single-use seeds, durable.
	opts := store.DefaultOptions()
	opts.NoSync = true // demo runs in a throwaway temp dir
	seeds := make([]uint64, 10)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	st, err := store.Enroll(root, twin, seeds, 0, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	verifier.Device = "node-0"
	verifier.WithSeedBudget(st)
	fmt.Printf("enrolled epoch %d: %d seeds\n", st.Epoch(), st.Remaining())

	// --- The rolling re-enrollment pipeline. The gate serialises sessions
	// against the cutover; OnCutover flips the live prover's device and the
	// verifier's emulation pipeline in the same exclusive section, so no
	// session ever straddles two epochs.
	gate := &attest.EpochGate{}
	verifier.Gate = gate
	ren := &attest.Reenroller{
		Store:         st,
		Device:        twin,
		DeviceName:    "node-0",
		Watermark:     3,
		SeedsPerEpoch: 10,
		Gate:          gate,
		OnCutover: func(_, epoch uint32) {
			dev.SetEpoch(epoch)
			verifier.Pipeline = core.MustNewVerifierPipeline(dev.Emulator())
			fmt.Printf("cutover: live device reconfigured to epoch %d\n", epoch)
		},
	}

	// --- Burn the budget to the watermark under live attestation.
	session := 0
	attestOnce := func() {
		session++
		res, err := attest.RunSession(verifier, prover, attest.DefaultLink())
		if err != nil {
			log.Fatalf("session %d: %v", session, err)
		}
		if !res.Accepted {
			log.Fatalf("session %d rejected: %s", session, res.Reason)
		}
	}
	for st.Remaining() > ren.Watermark {
		attestOnce()
	}
	fmt.Printf("budget at watermark: %d seeds left after %d sessions\n", st.Remaining(), session)

	// --- The watermark trips the background re-enrollment; attestation
	// keeps draining the old epoch until the cutover commits.
	if !ren.Check() {
		log.Fatal("watermark reached but re-enrollment did not trigger")
	}
	attestOnce() // rides the old epoch (or the new one, if the cutover won)
	if err := ren.Wait(); err != nil {
		log.Fatal(err)
	}
	attestOnce() // definitely the new epoch
	fmt.Printf("epoch %d live: %d seeds, %d total sessions, zero failures\n",
		st.Epoch(), st.Remaining(), session)

	// --- Isolation property 1: the retired epoch's seeds are dead. Even
	// the ones that were never used cannot be claimed.
	for _, seed := range seeds {
		if err := st.Claim(seed); !errors.Is(err, crp.ErrUnknownSeed) {
			log.Fatalf("retired seed %d still claimable: %v", seed, err)
		}
	}
	fmt.Printf("retired epoch 0: all %d original seeds rejected\n", len(seeds))

	// --- Isolation property 2: epochs are deterministic and mutually
	// decorrelated. An auditor rebuilding the device from its manufacturing
	// seed can revisit any epoch and reproduce its references exactly.
	audit := core.MustNewDevice(design, rng.New(42), 0)
	ch := design.ExpandChallenge(12345, 0)
	audit.SetEpoch(1)
	r1 := append([]uint8(nil), audit.NoiselessResponse(ch)...)
	audit.SetEpoch(0)
	r0 := append([]uint8(nil), audit.NoiselessResponse(ch)...)
	twin.SetEpoch(1) // twin is at epoch 1 already; re-assert for clarity
	live1 := twin.NoiselessResponse(ch)
	match, diff := 0, 0
	for i := range r1 {
		if r1[i] == live1[i] {
			match++
		}
		if r1[i] != r0[i] {
			diff++
		}
	}
	fmt.Printf("audit: epoch-1 rebuild matches live instance on %d/%d bits; epochs 0 vs 1 differ on %d/%d bits\n",
		match, len(r1), diff, len(r1))
	if match != len(r1) {
		log.Fatal("audit reconstruction failed: epochs are not deterministic")
	}
	if diff == 0 {
		log.Fatal("epoch reconfiguration changed nothing")
	}
}
