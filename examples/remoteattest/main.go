// Remote attestation over TCP: the prover runs as a network service
// wrapping the simulated embedded device; the verifier connects, challenges
// it repeatedly, and also demonstrates that an impersonating device (a
// different chip of the same design, running identical software) is
// rejected because its PUF cannot produce the enrolled chip's responses.
//
// The last act attests across a *lossy* link: a deterministic fault
// injector corrupts and drops frames, the CRC-validated codec detects the
// damage, and the verifier's retry policy (exponential backoff, seeded
// jitter, fresh connection per attempt) recovers — while the impostor's
// REJECTED verdict is never retried, because a rejection is a decision,
// not a fault.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"pufatt"

	"pufatt/internal/attest"
)

func main() {
	params := pufatt.AttestParams{MemWords: 2048, Chunks: 16, BlocksPerChunk: 8}
	payload := make([]uint32, 600)
	for i := range payload {
		payload[i] = pufatt.Mix32(uint32(i) + 99)
	}
	image, err := pufatt.BuildAttestationImage(params, payload)
	if err != nil {
		log.Fatal(err)
	}
	design, err := pufatt.NewDesign(pufatt.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The genuine device, enrolled with the verifier.
	genuine, err := pufatt.NewDevice(design, 7, 0)
	if err != nil {
		log.Fatal(err)
	}
	genuinePort, err := pufatt.NewDevicePort(genuine)
	if err != nil {
		log.Fatal(err)
	}
	genuineProver := pufatt.NewProver(image.Clone(), genuinePort, 1)
	genuineProver.TuneClock(0.98)

	// An impostor: same design, same software, different silicon.
	impostor, err := pufatt.NewDevice(design, 7, 1)
	if err != nil {
		log.Fatal(err)
	}
	impostorPort, err := pufatt.NewDevicePort(impostor)
	if err != nil {
		log.Fatal(err)
	}
	impostorProver := pufatt.NewProver(image.Clone(), impostorPort, genuineProver.FreqHz)

	// Serve both on localhost.
	genuineAddr, closeGenuine, err := pufatt.ServeProver("127.0.0.1:0", genuineProver)
	if err != nil {
		log.Fatal(err)
	}
	defer closeGenuine()
	impostorAddr, closeImpostor, err := pufatt.ServeProver("127.0.0.1:0", impostorProver)
	if err != nil {
		log.Fatal(err)
	}
	defer closeImpostor()

	// The verifier was enrolled with the GENUINE chip's delay model.
	verifier, err := pufatt.NewVerifier(image, genuine.Emulator(), genuineProver.FreqHz, genuinePort.Votes)
	if err != nil {
		log.Fatal(err)
	}
	link := pufatt.DefaultLink()
	verifier.AllowNetwork(link)
	fmt.Printf("verifier ready: δ = %.4fs over %s link\n", verifier.Delta(), link)

	attestOver := func(label, addr string, n int) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		for i := 0; i < n; i++ {
			res, err := attest.Request(conn, verifier, link)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s session %d: accepted=%v (%s)\n", label, i+1, res.Accepted, res.Reason)
		}
	}
	fmt.Println("attesting the genuine device at", genuineAddr)
	attestOver("genuine ", genuineAddr, 3)
	fmt.Println("attesting the impostor device at", impostorAddr)
	attestOver("impostor", impostorAddr, 2)

	// The same attestation across a lossy channel: the injector mangles
	// roughly every other frame (deterministically, from a seed) until it
	// has landed three faults; the retry policy redials through them.
	fmt.Println("\nattesting the genuine device over a lossy link (drop/corrupt, seeded)")
	policy := pufatt.DefaultRetryPolicy()
	policy.MaxAttempts = 6
	policy.AttemptTimeout = 500 * time.Millisecond
	inj := pufatt.NewFaultInjector(pufatt.FaultPlan{Drop: 0.5, Corrupt: 0.5, MaxFaults: 3}, 7)
	dial := func() (net.Conn, error) {
		conn, err := net.Dial("tcp", genuineAddr)
		if err != nil {
			return nil, err
		}
		return inj.Wrap(conn), nil
	}
	res, attempts, err := attest.RequestWithRetry(context.Background(), dial, verifier, link, policy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovered: accepted=%v after %d attempt(s), %d fault(s) injected %v\n",
		res.Accepted, attempts, inj.Injected(), inj.Counts())

	// A rejection must not be retried: re-challenging a forger would give
	// it fresh chances. One attempt, verdict final.
	fmt.Println("attesting the impostor with the same retry policy")
	impostorDials := 0
	res, attempts, err = attest.RequestWithRetry(context.Background(), func() (net.Conn, error) {
		impostorDials++
		return net.Dial("tcp", impostorAddr)
	}, verifier, link, policy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  verdict: accepted=%v — %d attempt(s), %d dial(s): the rejection was final\n",
		res.Accepted, attempts, impostorDials)
}
