// Silicon aging and directed burn-in: delay PUFs drift as transistors age,
// eroding the enrolled reference — and the same physics, applied
// deliberately (Kong & Koushanfar, IEEE TETC 2013, the paper's reference
// [13]), hardens the PUF: stressing the ALU that currently loses each
// arbiter race pushes the timing differences away from zero and makes the
// noisy bits reliable.
package main

import (
	"fmt"
	"log"

	"pufatt"

	"pufatt/internal/stats"
)

func main() {
	cfg := pufatt.DefaultConfig()
	design, err := pufatt.NewDesign(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := pufatt.NewDevice(design, 2030, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Measure the noisy flip rate against a fresh enrollment.
	flipRate := func() float64 {
		src := pufatt.NewRand(1)
		var hd stats.Summary
		for k := 0; k < 500; k++ {
			ch := design.ExpandChallenge(src.Uint64(), 0)
			ref := append([]uint8(nil), dev.NoiselessResponse(ch)...)
			for rep := 0; rep < 3; rep++ {
				hd.Add(float64(stats.HammingDistance(ref, dev.RawResponse(ch))))
			}
		}
		return hd.Mean() / float64(design.ResponseBits())
	}
	staleDrift := func(refs map[uint64][]uint8) float64 {
		src := pufatt.NewRand(1)
		var hd stats.Summary
		for k := 0; k < 500; k++ {
			seed := src.Uint64()
			hd.Add(float64(stats.HammingDistance(refs[seed],
				dev.NoiselessResponse(design.ExpandChallenge(seed, 0)))))
		}
		return hd.Mean() / float64(design.ResponseBits())
	}
	enroll := func() map[uint64][]uint8 {
		src := pufatt.NewRand(1)
		refs := make(map[uint64][]uint8)
		for k := 0; k < 500; k++ {
			seed := src.Uint64()
			refs[seed] = append([]uint8(nil), dev.NoiselessResponse(design.ExpandChallenge(seed, 0))...)
		}
		return refs
	}

	fmt.Printf("fresh silicon:          noisy flip rate %.4f\n", flipRate())
	refs := enroll()

	dev.Age(87600, 0.5) // ten years at 50 % duty cycle
	fmt.Printf("after 10y of field use: drift vs stale enrollment %.4f of bits\n", staleDrift(refs))
	fmt.Printf("                        noisy flip rate (fresh ref) %.4f\n", flipRate())
	fmt.Println("                        -> re-enrollment restores verifiability; aged,")
	fmt.Println("                           slower silicon is slightly LESS jitter-sensitive")

	dev.ReinforcementAge(2000, 300) // directed burn-in, then re-enroll
	fmt.Printf("after directed burn-in: noisy flip rate %.4f\n", flipRate())
	fmt.Println("                        -> the [13] response-tuning effect: weak arbiter")
	fmt.Println("                           races widened, metastability flips suppressed")
}
