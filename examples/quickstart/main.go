// Quickstart: manufacture an ALU PUF device, query it through the full
// PUF() pipeline (raw responses → helper data → obfuscation), verify the
// output through the emulation model, and run one remote attestation
// session end to end.
package main

import (
	"fmt"
	"log"

	"pufatt"
)

func main() {
	// A System bundles the whole stack: a 32-bit ALU PUF device at 45 nm,
	// the cycle-accurate prover MCU running the generated attestation
	// program, and a verifier holding the emulation model H.
	sys, err := pufatt.NewSystem(pufatt.Options{
		Seed:    2026,
		Payload: firmware(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: chip %d, %d-bit responses, prover clock %.1f MHz\n",
		sys.Device.ChipID(), sys.Design.ResponseBits(), sys.Prover.FreqHz/1e6)

	// A standalone PUF() query: one challenge seed expands into eight ALU
	// races; the verifier reconstructs the obfuscated output z from the
	// helper data without ever seeing the raw responses.
	z, verified, err := sys.QueryPUF(0xCAFE)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PUF(0xCAFE) = %08x, verifier reconstruction ok: %v\n", pufatt.ZWord(z), verified)

	// Remote attestation over the default sensor-node link: the verifier
	// challenges, the MCU computes the PUF-entangled checksum over its own
	// memory, and the verifier checks both the response and the time bound.
	for i := 1; i <= 3; i++ {
		res, err := sys.Attest(pufatt.Link{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attestation %d: accepted=%v elapsed=%.4fs (δ=%.4fs)\n",
			i, res.Accepted, res.Elapsed, res.Delta)
	}

	// Now infect the prover and watch attestation fail.
	for i := 0; i < 64; i++ {
		sys.Prover.Image.Mem[sys.Image.Layout.PayloadAddr+i] ^= 0xFF
	}
	res, err := sys.Attest(pufatt.Link{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after infection: accepted=%v (%s)\n", res.Accepted, res.Reason)
}

// firmware fabricates a deterministic payload standing in for the software
// state S being attested.
func firmware() []uint32 {
	fw := make([]uint32, 512)
	for i := range fw {
		fw[i] = pufatt.Mix32(uint32(i) * 2654435761)
	}
	return fw
}
