// Federated fleet observability: two verifier shards, one pane of glass.
//
// A deployment rarely has a single verifier. Here an "east" and a "west"
// shard each attest their own slice of the fleet with a fully private
// telemetry bundle (registry, journal, health, history, alerts) served on
// their own admin endpoint. A federator then scrapes both and re-serves
// the union — every series, device, and alert labeled with its source
// shard — so one dashboard covers the whole fleet.
//
// West node 2 answers through a jittery link that inflates every
// round-trip by 30 ms while the response stays genuine: the PUFatt timing
// signature of a proxied or overclocked prover. Its RTT history crosses
// the shard's timing SLO, the burn-rate alert fires on the west shard,
// and both facts surface through the federated endpoint.
//
// Run it, then explore while it serves:
//
//	curl http://localhost:7793/healthz          # merged fleet health (worst wins)
//	curl http://localhost:7793/devices          # per-device health + "source" label
//	curl http://localhost:7793/alerts           # burn-rate alerts across shards
//	curl 'http://localhost:7793/metrics/history?metric=attest_rtt_seconds'
//	curl http://localhost:7793/federation       # per-source scrape accounting
//	go run ./cmd/pufatt-top -addr http://localhost:7793
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pufatt"
	"pufatt/internal/attest"
	"pufatt/internal/telemetry"
)

const nodesPerShard = 3

// shard is one verifier deployment with a private telemetry bundle.
type shard struct {
	name  string
	tel   *attest.Telemetry
	fleet *attest.Fleet
	addr  string
}

func buildShard(name string, design *pufatt.Design, image *pufatt.Image, baseID int, jitterNode int) *shard {
	tel := attest.NewTelemetry(telemetry.NewRegistry(), telemetry.NewTracer(256))
	fleet := attest.NewFleet()
	fleet.Telemetry = tel
	for i := 0; i < nodesPerShard; i++ {
		id := baseID + i
		dev, err := pufatt.NewDevice(design, 2000, id)
		if err != nil {
			log.Fatal(err)
		}
		port, err := pufatt.NewDevicePort(dev)
		if err != nil {
			log.Fatal(err)
		}
		prover := pufatt.NewProver(image.Clone(), port, 1)
		prover.TuneClock(0.98)
		verifier, err := pufatt.NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
		if err != nil {
			log.Fatal(err)
		}
		verifier.Device = fmt.Sprintf("%s-node-%d", name, i)

		var agent attest.ProverAgent = prover
		if i == jitterNode {
			// The new jitter fault class: the session always completes and
			// the checksum is genuine — only the round-trip is inflated.
			// Exactly the signal the timing SLO and RTT burn alert watch.
			agent = attest.NewFaultyLink(prover, attest.FaultPlan{Jitter: 1, JitterSeconds: 0.030}, uint64(id))
		}
		if err := fleet.Enroll(id, verifier, agent); err != nil {
			log.Fatal(err)
		}
	}
	return &shard{name: name, tel: tel, fleet: fleet}
}

func main() {
	design, err := pufatt.NewDesign(pufatt.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	params := pufatt.AttestParams{MemWords: 1024, Chunks: 8, BlocksPerChunk: 8}
	firmware := make([]uint32, 300)
	for i := range firmware {
		firmware[i] = pufatt.Mix32(uint32(i) ^ 0xfed5)
	}
	image, err := pufatt.BuildAttestationImage(params, firmware)
	if err != nil {
		log.Fatal(err)
	}

	east := buildShard("east", design, image, 0, -1)
	west := buildShard("west", design, image, 100, 2)
	shards := []*shard{east, west}
	link := attest.DefaultLink()

	// Calibration sweep: the slowest honest round-trip plus a guard band
	// sets each shard's timing SLO. West node 2's extra 30 ms lands far
	// outside it.
	var calib float64
	for _, s := range shards {
		report := s.fleet.Sweep(link)
		for _, r := range report.Results {
			honest := !(s == west && r.NodeID == 102)
			if honest && r.Err == nil && r.Result.Elapsed > calib {
				calib = r.Result.Elapsed
			}
		}
	}
	for _, s := range shards {
		slo := s.tel.Health.SLO()
		// The guard band must dominate histogram-bucket quantization: the
		// health registry's p95 is interpolated within a bucket, so honest
		// traffic at ~13 ms reports p95 ≈ 24 ms. 15 ms of guard keeps the
		// honest fleet green while west node 2's extra 30 ms lands far out.
		slo.MaxRTTP95 = calib + 0.015
		slo.MinSessions = 3
		s.tel.SetSLO(slo)
		// Demo-friendly burn windows: the default 1 min / 5 min SRE
		// windows would keep this example running for minutes before the
		// slow window fills. Two and eight seconds show the same dual
		// window mechanics at demo speed.
		rules := attest.DefaultAlertRules(slo)
		for i := range rules {
			rules[i].FastWindow = 2 * time.Second
			rules[i].SlowWindow = 8 * time.Second
		}
		s.tel.Alerts.SetRules(rules)
	}
	fmt.Printf("fleetfed: timing SLO p95 RTT ≤ %.4fs (honest calibration %.4fs + 15ms guard)\n", calib+0.015, calib)

	// Each shard serves its own admin surface and samples its history
	// twice a second.
	ports := []string{"localhost:7791", "localhost:7792"}
	for i, s := range shards {
		addr, stop, err := attest.StartAdmin(ports[i], s.tel)
		if err != nil {
			addr, stop, err = attest.StartAdmin("localhost:0", s.tel)
			if err != nil {
				log.Fatal(err)
			}
		}
		defer stop()
		s.addr = addr.String()
		s.tel.History.SetWindow(500 * time.Millisecond)
		stopObs := s.tel.StartObservability(500 * time.Millisecond)
		defer stopObs()
		fmt.Printf("fleetfed: %s shard admin at http://%s\n", s.name, s.addr)
	}

	// The federator scrapes both shards and re-serves the union.
	fed, err := pufatt.NewFleetFederator([]pufatt.ScrapeSource{
		{Name: "east", BaseURL: "http://" + east.addr},
		{Name: "west", BaseURL: "http://" + west.addr},
	})
	if err != nil {
		log.Fatal(err)
	}
	fed.SetStaleAfter(5 * time.Second)
	fedAddr, stopFed, err := pufatt.StartFederation("localhost:7793", fed, time.Second)
	if err != nil {
		fedAddr, stopFed, err = pufatt.StartFederation("localhost:0", fed, time.Second)
		if err != nil {
			log.Fatal(err)
		}
	}
	defer stopFed()
	fmt.Printf("fleetfed: federated endpoint at http://%s\n\n", fedAddr)

	// Sweep both shards for ten seconds of wall time so the history rings
	// and burn windows fill while the admin surfaces are live.
	for round := 0; round < 20; round++ {
		for _, s := range shards {
			s.fleet.Sweep(link)
		}
		time.Sleep(500 * time.Millisecond)
	}

	fed.Poll(context.Background()) // one fresh scrape before the summary
	health := fed.Health()
	fmt.Printf("federated fleet health: %s\n", health.Status)
	for _, s := range shards {
		sum := s.tel.Health.Summary()
		fmt.Printf("  %s: %s (%d ok, %d suspect of %d devices)\n",
			s.name, sum.Status(), sum.OK, sum.Suspect, sum.Devices)
		for _, a := range s.tel.Alerts.Snapshot() {
			if a.State != telemetry.AlertInactive {
				fmt.Printf("    alert %s: %s (fast %.1fx, slow %.1fx)\n",
					a.Rule.Name, a.State, a.FastBurn, a.SlowBurn)
			}
		}
	}

	fmt.Println("\nserving all three endpoints for 45s — try pufatt-top against the federated one (ctrl-C to stop early)")
	fmt.Printf("  go run ./cmd/pufatt-top -addr http://%s\n", fedAddr)
	time.Sleep(45 * time.Second)
}
