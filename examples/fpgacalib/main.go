// FPGA calibration flow: program two modelled Virtex-5 boards with the same
// ALU PUF bitstream, observe the raw arbiter biases the routing skew causes,
// tune the 64-stage programmable delay lines per Majzoobi et al. until each
// arbiter sits near 50/50, and collect a CRP campaign over the SIRC channel
// to measure the inter- and intra-chip statistics of Section 4.1.
package main

import (
	"fmt"
	"log"

	"pufatt"

	"pufatt/internal/stats"
)

func main() {
	cfg := pufatt.DefaultFPGAConfig()
	design, err := pufatt.NewFPGADesign(cfg)
	if err != nil {
		log.Fatal(err)
	}
	b0, err := pufatt.NewFPGABoard(design, 42, 0, cfg)
	if err != nil {
		log.Fatal(err)
	}
	b1, err := pufatt.NewFPGABoard(design, 42, 1, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("calibrating PDLs (64 stages per arbiter input)...")
	cal := pufatt.NewRand(7)
	for i, b := range []*pufatt.FPGABoard{b0, b1} {
		rep := b.Calibrate(12, 400, cal.SubN("board", i))
		worstBefore, worstAfter := worst(rep.InitialBias), worst(rep.FinalBias)
		fmt.Printf("  board %d: worst |bias-0.5| %.3f -> %.3f (mean residual %.3f)\n",
			i, worstBefore, worstAfter, rep.MeanResidual)
	}

	// CRP collection campaign over the SIRC channel.
	ch0 := pufatt.NewSIRCChannel(b0, 125e6)
	seeds, r0, err := ch0.CollectCRPs(4000, pufatt.NewRand(9))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", ch0.Describe())

	// Replay the same seeds on board 1 and re-measure board 0 for the
	// inter-/intra-chip statistics.
	var inter, intra stats.Summary
	for k, s := range seeds {
		chal := design.ExpandChallenge(s, 0)
		inter.Add(float64(stats.HammingDistance(r0[k], b1.Device().RawResponseCopy(chal))))
		intra.Add(float64(stats.HammingDistance(r0[k], b0.Device().RawResponse(chal))))
	}
	fmt.Printf("\nmeasured over %d challenges (paper, two boards):\n", len(seeds))
	fmt.Printf("  inter-chip HD: %.2f bits (%.1f%%)   paper: 3.0 bits (18.8%%)\n",
		inter.Mean(), 100*inter.Mean()/16)
	fmt.Printf("  intra-chip HD: %.2f bits (%.1f%%)   paper: 2.9 bits (18.6%%)\n",
		intra.Mean(), 100*intra.Mean()/16)

	// Table 1: what this prototype costs on the fabric.
	rows, err := pufatt.Table1(16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", pufatt.FormatTable1(rows))
}

func worst(bias []float64) float64 {
	w := 0.0
	for _, p := range bias {
		d := p - 0.5
		if d < 0 {
			d = -d
		}
		if d > w {
			w = d
		}
	}
	return w
}
