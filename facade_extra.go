package pufatt

import (
	"errors"
	"net"
	"net/http"
	"time"

	"pufatt/internal/attacks"
	"pufatt/internal/attest"
	"pufatt/internal/buildinfo"
	"pufatt/internal/fpga"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/slender"
	"pufatt/internal/swatt"
	"pufatt/internal/telemetry"
)

// This file extends the facade with the FPGA-prototype and adversary
// tooling, so example programs and downstream users can reach every
// system the paper describes through the public API.

// FPGA prototype types.
type (
	// FPGAConfig parameterises the Virtex-5 board model.
	FPGAConfig = fpga.Config
	// PDL is a programmable delay line.
	PDL = fpga.PDL
	// CalibrationReport summarises a PDL calibration run.
	CalibrationReport = fpga.CalibrationReport
	// SIRCChannel is the host↔fabric data-collection channel.
	SIRCChannel = fpga.Channel
	// ResourceRow is one line of the Table 1 resource comparison.
	ResourceRow = fpga.ComponentRow
)

// Rand is the deterministic splittable random source the measurement
// campaigns consume (calibration, CRP collection, sweeps).
type Rand = rng.Source

// NewRand returns a deterministic random source for measurement campaigns.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// DefaultFPGAConfig returns the calibrated two-board model configuration.
func DefaultFPGAConfig() FPGAConfig { return fpga.DefaultConfig() }

// NewFPGADesign builds the shared-bitstream ALU PUF design.
func NewFPGADesign(cfg FPGAConfig) (*Design, error) { return fpga.NewDesign(cfg) }

// NewFPGABoard programs one board with the design.
func NewFPGABoard(design *Design, seed uint64, id int, cfg FPGAConfig) (*FPGABoard, error) {
	return fpga.NewBoard(design, rng.New(seed), id, cfg)
}

// NewSIRCChannel attaches a data-collection channel to a board.
func NewSIRCChannel(board *FPGABoard, bytesPerSecond float64) *SIRCChannel {
	return fpga.NewChannel(board, bytesPerSecond)
}

// Table1 returns the FPGA resource comparison rows for a PUF width.
func Table1(width int) ([]ResourceRow, error) { return fpga.Table1(width) }

// FormatTable1 renders resource rows as an aligned table.
func FormatTable1(rows []ResourceRow) string { return fpga.FormatTable1(rows) }

// Adversary tooling.
type (
	// MLModel is a trained PUF modeling-attack model.
	MLModel = attacks.MLModel
	// ObfuscatedOracle exposes the obfuscated PUF interface to attacks.
	ObfuscatedOracle = attacks.ObfuscatedOracle
	// OracleProxyProver is the PUF-as-oracle outsourcing adversary.
	OracleProxyProver = attacks.OracleProxyProver
	// OverclockPoint is one sample of the overclocking corruption sweep.
	OverclockPoint = attacks.OverclockPoint
	// DevicePort couples a device to the MCU's pstart/pend instructions.
	DevicePort = mcu.DevicePort
)

// TrainRawModel trains the logistic modeling attack on raw CRPs.
func TrainRawModel(dev *Device, nTrain, epochs int, seed uint64) *MLModel {
	return attacks.TrainRawModel(dev, nTrain, epochs, rng.New(seed), 0)
}

// NewObfuscatedOracle wraps a device behind the obfuscation network.
func NewObfuscatedOracle(dev *Device) (*ObfuscatedOracle, error) {
	return attacks.NewObfuscatedOracle(dev)
}

// TrainObfuscatedModel trains the attack against the obfuscated interface.
func TrainObfuscatedModel(oracle *ObfuscatedOracle, nTrain, epochs int, seed uint64) *MLModel {
	return attacks.TrainObfuscatedModel(oracle, nTrain, epochs, rng.New(seed), 0)
}

// EvaluateRawModel measures a raw model's per-bit accuracy on fresh CRPs.
func EvaluateRawModel(m *MLModel, dev *Device, nTest int, seed uint64) float64 {
	return m.AccuracyRaw(dev, nTest, rng.New(seed), 0)
}

// EvaluateObfuscatedModel measures an obfuscated model's per-bit accuracy.
func EvaluateObfuscatedModel(m *MLModel, oracle *ObfuscatedOracle, nTest int, seed uint64) float64 {
	return m.AccuracyObfuscated(oracle, nTest, rng.New(seed), 0)
}

// NewForgeryProver builds the memory-copy attack prover.
func NewForgeryProver(expected *Image, malware []uint32, port *DevicePort, freqHz float64) (*Prover, error) {
	return attacks.NewForgeryProver(expected, malware, port, freqHz)
}

// ForgeryOverheadCycles measures the forgery's extra cycles.
func ForgeryOverheadCycles(expected *Image, votes int) (extra, honest, forged uint64, err error) {
	return attacks.ForgeryOverheadCycles(expected, votes)
}

// OverclockSweep measures PUF response corruption across clock factors.
func OverclockSweep(dev *Device, port *DevicePort, factors []float64, trials int, seed uint64) []OverclockPoint {
	return attacks.OverclockSweep(dev, port, factors, trials, rng.New(seed))
}

// OracleAttackTime returns the proxy adversary's minimum elapsed time.
func OracleAttackTime(chunks int, link Link) float64 {
	return attacks.OracleAttackTime(chunks, link)
}

// Slender PUF authentication (reference [22]): lightweight device
// authentication by substring matching, no error correction needed.
type (
	// SlenderParams configures the substring-matching protocol.
	SlenderParams = slender.Params
	// SlenderProver is the device side.
	SlenderProver = slender.Prover
	// SlenderVerifier is the emulation side.
	SlenderVerifier = slender.Verifier
	// SlenderOutcome reports one authentication decision.
	SlenderOutcome = slender.Outcome
)

// DefaultSlenderParams returns the calibrated protocol configuration.
func DefaultSlenderParams() SlenderParams { return slender.DefaultParams() }

// NewSlenderProver wraps a device for substring-matching authentication.
func NewSlenderProver(dev *Device, p SlenderParams) (*SlenderProver, error) {
	return slender.NewProver(dev, p)
}

// NewSlenderVerifier wraps an emulator for substring-matching verification.
func NewSlenderVerifier(em *Emulator, p SlenderParams) (*SlenderVerifier, error) {
	return slender.NewVerifier(em, p)
}

// SlenderAuthenticate runs one authentication round.
func SlenderAuthenticate(pr *SlenderProver, v *SlenderVerifier, src *Rand) (SlenderOutcome, error) {
	return slender.Authenticate(pr, v, src)
}

// MCU / attestation-program tooling.

// NewDevicePort couples a device to the pstart/pend instructions.
func NewDevicePort(dev *Device) (*DevicePort, error) { return mcu.NewDevicePort(dev) }

// GenerateAttestationProgram emits the SWATT-style checksum assembly.
func GenerateAttestationProgram(p AttestParams) (string, error) {
	return swatt.GenerateProgram(p)
}

// BuildAttestationImage assembles the attestation program plus payload.
func BuildAttestationImage(p AttestParams, payload []uint32) (*Image, error) {
	return swatt.BuildImage(p, payload)
}

// NewProver wraps an image and a port into the honest prover agent.
func NewProver(image *Image, port *DevicePort, freqHz float64) *Prover {
	return attest.NewProver(image, port, freqHz)
}

// NewVerifier builds the protocol verifier over a reference source.
func NewVerifier(expected *Image, src ReferenceSource, baseFreqHz float64, votes int) (*Verifier, error) {
	return attest.NewVerifier(expected, src, baseFreqHz, votes)
}

// ReferenceSource supplies verifier reference responses (Emulator or
// CRPDatabase).
type ReferenceSource = interface {
	ReferenceResponse(seed uint64, j int) ([]uint8, error)
	ResponseBits() int
}

// Fleet types for population attestation.
type (
	// Fleet manages attestation for a population of enrolled devices.
	Fleet = attest.Fleet
	// NodeResult is one node's sweep outcome.
	NodeResult = attest.NodeResult
	// SweepOptions tunes a fleet sweep (concurrency, retry budget,
	// quarantine probing).
	SweepOptions = attest.SweepOptions
	// SweepReport classifies a sweep's nodes into healthy, compromised
	// (verifier rejected), unreachable (transport exhausted), and
	// quarantined.
	SweepReport = attest.SweepReport
)

// NewFleet returns an empty device fleet.
func NewFleet() *Fleet { return attest.NewFleet() }

// DefaultSweepOptions returns the bounded-concurrency sweep defaults.
func DefaultSweepOptions() SweepOptions { return attest.DefaultSweepOptions() }

// Compromised filters a sweep's results down to the nodes the verifier
// REJECTED — the security failures. Nodes that could not be reached at all
// are reported by Unreachable instead.
func Compromised(results []NodeResult) []int { return attest.Compromised(results) }

// Unreachable filters a sweep's results down to the nodes whose transport
// budget was exhausted — availability failures with no integrity verdict.
func Unreachable(results []NodeResult) []int { return attest.Unreachable(results) }

// ServeProver answers attestation challenges on a TCP address; the returned
// function closes the listener.
func ServeProver(addr string, agent attest.ProverAgent) (string, func() error, error) {
	a, closeFn, err := attest.ListenAndServe(addr, agent)
	if err != nil {
		return "", nil, err
	}
	return a.String(), closeFn, nil
}

// Fault tolerance: transport hardening, retry policy, and the
// deterministic fault-injection harness.
type (
	// ProverAgent is anything that can answer an attestation challenge:
	// the honest device, an adversary, or a FaultyLink-wrapped agent.
	ProverAgent = attest.ProverAgent
	// AttestServer is the supervised TCP prover service (error surfacing,
	// per-exchange deadlines, deterministic drain-on-close).
	AttestServer = attest.Server
	// RetryPolicy is the verifier-side transport-fault retry budget with
	// exponential backoff and seeded jitter.
	RetryPolicy = attest.RetryPolicy
	// FaultPlan sets per-frame fault probabilities for injection.
	FaultPlan = attest.FaultPlan
	// FaultClass enumerates the injectable fault classes.
	FaultClass = attest.FaultClass
	// FaultInjector owns a deterministic fault schedule spanning
	// connections.
	FaultInjector = attest.FaultInjector
	// FaultyConn injects frame-granular faults into a byte stream.
	FaultyConn = attest.FaultyConn
	// FaultyLink injects faults into an in-memory prover agent's last hop.
	FaultyLink = attest.FaultyLink
)

// Injectable fault classes.
const (
	FaultDrop      = attest.FaultDrop
	FaultCorrupt   = attest.FaultCorrupt
	FaultTruncate  = attest.FaultTruncate
	FaultDelay     = attest.FaultDelay
	FaultDuplicate = attest.FaultDuplicate
)

// DefaultRetryPolicy returns the TCP verifier retry defaults.
func DefaultRetryPolicy() RetryPolicy { return attest.DefaultRetryPolicy() }

// NewFaultInjector creates a deterministic fault schedule from a seed.
func NewFaultInjector(plan FaultPlan, seed uint64) *FaultInjector {
	return attest.NewFaultInjector(plan, seed)
}

// NewFaultyLink wraps an agent with a lossy simulated last hop.
func NewFaultyLink(agent attest.ProverAgent, plan FaultPlan, seed uint64) *FaultyLink {
	return attest.NewFaultyLink(agent, plan, seed)
}

// IsTransport reports whether an attestation error is a retryable channel
// fault (as opposed to a device failure or a user abort; a verifier
// rejection is never an error at all).
func IsTransport(err error) bool { return attest.IsTransport(err) }

// RunSessionRetry attests over the simulated link with a transport-fault
// retry budget; a verdict — accepted or rejected — is never retried.
func RunSessionRetry(v *Verifier, agent attest.ProverAgent, link Link, policy RetryPolicy) (Result, int, error) {
	return attest.RunSessionRetry(v, agent, link, policy)
}

// Observability: telemetry instruments, attestation tracing, and the HTTP
// admin surface.
type (
	// AttestTelemetry bundles the attestation layer's metric instruments
	// over one registry (see DESIGN.md "Observability").
	AttestTelemetry = attest.Telemetry
	// SweepStats is one fleet sweep's aggregate telemetry (attempts,
	// retries, probes, quarantine transitions, RTT summary, elapsed).
	SweepStats = attest.SweepStats
	// FaultEvent is the one-line JSON record emitted per injected fault.
	FaultEvent = attest.FaultEvent
	// MetricsRegistry holds named metric families and renders them as
	// Prometheus text exposition or expvar-style JSON.
	MetricsRegistry = telemetry.Registry
	// Tracer records recent attestation span trees in a ring buffer.
	Tracer = telemetry.Tracer
	// HealthSLO holds the per-device service-level thresholds (timing,
	// failure rate, FNR drift, transport/retry rates) that drive the
	// ok/degraded/suspect judgement at /devices and /healthz.
	HealthSLO = telemetry.SLO
	// DeviceHealth is one device's rolling-window health snapshot.
	DeviceHealth = telemetry.DeviceHealth
	// HealthRegistry aggregates per-device session outcomes and judges
	// them against a HealthSLO.
	HealthRegistry = telemetry.HealthRegistry
	// ProtocolJournal is the bounded ring of structured protocol events
	// behind /debug/journal and the flight recorder.
	ProtocolJournal = telemetry.Journal
	// BuildInfo identifies a built pufatt tool (version, VCS revision).
	BuildInfo = buildinfo.Info
)

// DefaultHealthSLO returns the conservative stock thresholds; the timing
// bound MaxRTTP95 is deployment-specific and left unset.
func DefaultHealthSLO() HealthSLO { return telemetry.DefaultSLO() }

// AttestMetrics returns the attestation layer's package-default telemetry:
// the instruments every session, retry, sweep, and injected fault records
// into, served by the admin endpoint.
func AttestMetrics() *AttestTelemetry { return attest.Metrics() }

// DefaultMetrics returns the process-wide metric registry shared by every
// instrumented layer (attest, sim, crp, obfuscate, PUF pipeline).
func DefaultMetrics() *MetricsRegistry { return telemetry.Default() }

// DefaultTracer returns the process-wide attestation tracer.
func DefaultTracer() *Tracer { return telemetry.DefaultTracer() }

// StartAdmin serves /metrics, /debug/vars, /debug/traces, /debug/journal,
// /devices, /healthz, and /debug/pprof on the TCP address (":0" picks a
// free port); nil telemetry means the package default. The returned
// function stops the listener.
func StartAdmin(addr string, t *AttestTelemetry) (string, func() error, error) {
	a, closeFn, err := attest.StartAdmin(addr, t)
	if err != nil {
		return "", nil, err
	}
	return a.String(), closeFn, nil
}

// Fleet federation types: one observability endpoint over many verifiers.
type (
	// MetricsHistory is the bounded windowed time-series store behind
	// /metrics/history.
	MetricsHistory = telemetry.TimeSeries
	// AlertManager evaluates SLO burn-rate rules over the metric history
	// and serves /alerts.
	AlertManager = telemetry.AlertManager
	// AlertRule is one burn-rate alerting rule (ratio, quantile, or gauge
	// threshold over dual fast/slow windows).
	AlertRule = telemetry.Rule
	// ScrapeSource names one verifier admin endpoint a federator polls.
	ScrapeSource = telemetry.ScrapeSource
	// FleetFederator scrapes several verifiers' admin surfaces and
	// re-serves the merged history, devices, alerts, and health, every
	// record labeled with its source.
	FleetFederator = telemetry.Federator
)

// DefaultAlertRules derives the stock burn-rate rule set (session
// failures, false-negative rate, RTT p95, seed budget) from an SLO.
func DefaultAlertRules(slo HealthSLO) []AlertRule { return attest.DefaultAlertRules(slo) }

// NewFleetFederator builds a federator over the named admin endpoints.
// Source names must be unique and non-empty: they become the "source"
// label on every merged record.
func NewFleetFederator(sources []ScrapeSource) (*FleetFederator, error) {
	return telemetry.NewFederator(sources)
}

// StartFederation serves the federator's merged admin surface
// (/metrics/history, /devices, /alerts, /healthz, /federation) on the TCP
// address (":0" picks a free port) and starts the scrape loop at the given
// interval. The returned function stops both.
func StartFederation(addr string, fed *FleetFederator, interval time.Duration) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: fed.Mux()}
	go func() {
		if serr := srv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			_ = serr // listener closed under us: nothing useful to do
		}
	}()
	stopPoll := fed.Start(interval)
	closeFn := func() error {
		stopPoll()
		return srv.Close()
	}
	return ln.Addr().String(), closeFn, nil
}
