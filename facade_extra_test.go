package pufatt

import (
	"net"
	"strings"
	"testing"

	"pufatt/internal/attest"
)

func testRNG(seed uint64) *Rand { return NewRand(seed) }

func TestFPGAFacade(t *testing.T) {
	cfg := DefaultFPGAConfig()
	design, err := NewFPGADesign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	board, err := NewFPGABoard(design, 5, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := board.Calibrate(4, 100, testRNG(1))
	if len(rep.FinalBias) != 16 {
		t.Errorf("calibration bias vector has %d entries", len(rep.FinalBias))
	}
	ch := NewSIRCChannel(board, 125e6)
	seeds, resps, err := ch.CollectCRPs(10, testRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 10 || len(resps) != 10 {
		t.Error("collection size wrong")
	}
	rows, err := Table1(16)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(FormatTable1(rows), "SIRC") {
		t.Error("Table1 formatting broken")
	}
}

func TestAttackFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 16
	design, _ := NewDesign(cfg)
	dev, _ := NewDevice(design, 7, 0)
	m := TrainRawModel(dev, 400, 10, 8)
	if acc := EvaluateRawModel(m, dev, 100, 9); acc < 0.7 {
		t.Errorf("facade-trained raw model accuracy %.3f", acc)
	}
	oracle, err := NewObfuscatedOracle(dev)
	if err != nil {
		t.Fatal(err)
	}
	mo := TrainObfuscatedModel(oracle, 200, 5, 10)
	if acc := EvaluateObfuscatedModel(mo, oracle, 50, 11); acc > 0.95 {
		t.Errorf("obfuscated model suspiciously accurate: %.3f", acc)
	}
	pts := OverclockSweep(dev, mustPort(t, dev), []float64{1.0, 2.0}, 20, 12)
	if len(pts) != 2 {
		t.Fatal("sweep size wrong")
	}
	if OracleAttackTime(10, DefaultLink()) <= 0 {
		t.Error("oracle time not positive")
	}
}

func mustPort(t *testing.T, dev *Device) *DevicePort {
	t.Helper()
	p, err := NewDevicePort(dev)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAttestationFacadeAndForgery(t *testing.T) {
	design, _ := NewDesign(DefaultConfig())
	dev, _ := NewDevice(design, 13, 0)
	port := mustPort(t, dev)
	params := AttestParams{MemWords: 1024, Chunks: 4, BlocksPerChunk: 8}
	image, err := BuildAttestationImage(params, []uint32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	src, err := GenerateAttestationProgram(params)
	if err != nil || !strings.Contains(src, "pstart") {
		t.Fatalf("program generation: %v", err)
	}
	prover := NewProver(image.Clone(), port, 1)
	prover.TuneClock(0.98)
	verifier, err := NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
	if err != nil {
		t.Fatal(err)
	}
	verifier.AllowNetwork(DefaultLink())
	res, err := RunSession(verifier, prover, DefaultLink())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("facade session rejected: %s", res.Reason)
	}
	extra, honest, forged, err := ForgeryOverheadCycles(image, port.Votes)
	if err != nil || extra == 0 || forged <= honest {
		t.Fatalf("forgery accounting: extra=%d honest=%d forged=%d err=%v", extra, honest, forged, err)
	}
	if _, err := NewForgeryProver(image, []uint32{0xBAD}, port, prover.FreqHz); err != nil {
		t.Fatal(err)
	}
}

func TestServeProverFacade(t *testing.T) {
	design, _ := NewDesign(DefaultConfig())
	dev, _ := NewDevice(design, 17, 0)
	port := mustPort(t, dev)
	image, _ := BuildAttestationImage(AttestParams{MemWords: 1024, Chunks: 4, BlocksPerChunk: 2}, nil)
	prover := NewProver(image.Clone(), port, 1)
	prover.TuneClock(0.98)
	addr, closeFn, err := ServeProver("127.0.0.1:0", prover)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	verifier, _ := NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
	verifier.AllowNetwork(DefaultLink())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := attest.Request(conn, verifier, DefaultLink())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("TCP facade session rejected: %s", res.Reason)
	}
}
