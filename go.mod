module pufatt

go 1.22
